//! The sharded campaign driver: partitions a spec sequence into shards,
//! dispatches them to workers, and survives every failure mode the wire
//! can produce.
//!
//! The driver is a [`CampaignExecutor`]: `Campaign::run_on(&driver)`
//! behaves exactly like running on a local [`crate::runner::BatchRunner`]
//! — bit-identically, for every successful point — except that points
//! execute on worker endpoints ([`Endpoint::Tcp`] peers, or
//! [`Endpoint::Process`] workers the driver spawns itself).
//!
//! ## Failure model
//!
//! * **Dead or silent worker** — every read carries the
//!   [`DriverConfig::read_timeout`]; workers heartbeat far more often
//!   than that, so a timeout means the worker is gone, not slow.
//! * **Failed shard attempt** — the shard returns to the queue after a
//!   seeded exponential backoff with jitter
//!   ([`DriverConfig::backoff_base`]/`backoff_cap`/`backoff_seed`), up
//!   to [`DriverConfig::max_attempts`] dispatches. Any surviving
//!   endpoint can pick up the retry.
//! * **Straggler** — once a shard's only dispatch has been running
//!   longer than [`DriverConfig::speculate_after`], an idle endpoint
//!   re-dispatches it speculatively; the first completion wins and the
//!   loser is discarded (results are bit-identical either way).
//! * **Flaky endpoint** — an endpoint that fails
//!   [`DriverConfig::endpoint_failure_limit`] consecutive attempts
//!   retires; its queued work drains to the survivors.
//! * **Exhausted retries / no survivors** — the affected points degrade
//!   into [`PointError`]s naming the last transport error; the campaign
//!   completes and reports them in its failed set instead of aborting.
//! * **Driver crash** — with [`DriverConfig::journal`], every completed
//!   point is journaled (flushed per record); `resume: true` replays the
//!   journal and dispatches only what it does not cover
//!   (`super::journal`).

use super::journal::{Journal, JournalRecord};
use super::wire::{read_frame, write_frame, Message, WireError};
use crate::cache::{parse_entry, render_entry};
use crate::campaign::CampaignExecutor;
use crate::runner::{PointError, PointOutcome, RunSpec};
use nocout_sim::rng::SimRng;
use std::collections::HashMap;
use std::io::BufRead;
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Where a worker lives.
#[derive(Debug, Clone)]
pub enum Endpoint {
    /// An already-running worker listening on `host:port`.
    Tcp(String),
    /// A worker process the driver spawns. `--listen 127.0.0.1:0` is
    /// appended to `args`; the worker must print `listening <addr>` on
    /// stdout once bound (as `nocout-worker` does). The driver kills the
    /// process when execution finishes.
    Process {
        /// The worker executable.
        program: PathBuf,
        /// Arguments before the appended `--listen`.
        args: Vec<String>,
    },
}

/// Tuning knobs of the sharded driver. The defaults suit local process
/// pools on a loaded machine: generous timeouts, fast first retry.
#[derive(Debug, Clone)]
pub struct DriverConfig {
    /// Specs per shard (the retry/journal granularity).
    pub shard_points: usize,
    /// Total dispatch attempts per shard before its points degrade into
    /// [`PointError`]s.
    pub max_attempts: u32,
    /// First-retry backoff; attempt *n* waits `base * 2^(n-1)`, capped.
    pub backoff_base: Duration,
    /// Upper bound on the exponential backoff.
    pub backoff_cap: Duration,
    /// Seed of the deterministic backoff jitter (each delay is scaled by
    /// a factor in `[0.5, 1.0)` drawn from
    /// `SimRng::new(seed ^ shard ^ attempt)` — reproducible schedules
    /// for tests, decorrelated retries in production).
    pub backoff_seed: u64,
    /// Per-read deadline. Workers heartbeat every ~200 ms, so this is a
    /// liveness bound, not a per-point time budget; keep it large (the
    /// default is 30 s) — a expiry means a dead worker.
    pub read_timeout: Duration,
    /// Re-dispatch a shard speculatively once its only dispatch has been
    /// in flight this long and an endpoint is idle. `None` disables
    /// speculation.
    pub speculate_after: Option<Duration>,
    /// Consecutive failed attempts after which an endpoint retires.
    pub endpoint_failure_limit: u32,
    /// Campaign manifest journal path (`super::journal`).
    pub journal: Option<PathBuf>,
    /// Replay an existing journal instead of truncating it.
    pub resume: bool,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            shard_points: 4,
            max_attempts: 4,
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(2),
            backoff_seed: 0x6e6f_636f_7574, // "nocout"
            read_timeout: Duration::from_secs(30),
            speculate_after: None,
            endpoint_failure_limit: 3,
            journal: None,
            resume: false,
        }
    }
}

/// What one execution did, for reporting and tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct DriverStats {
    /// Shards the spec sequence partitioned into (after journal replay).
    pub shards: u64,
    /// Shard dispatches, including retries and speculation.
    pub dispatches: u64,
    /// Re-dispatches caused by failed attempts.
    pub retries: u64,
    /// Speculative re-dispatches of stragglers.
    pub speculative: u64,
    /// Failed shard attempts (transport or protocol errors).
    pub failed_attempts: u64,
    /// Points recovered from the journal instead of dispatched.
    pub journal_resumed: u64,
    /// Points that degraded into [`PointError`]s.
    pub failed_points: u64,
}

/// A fault-tolerant [`CampaignExecutor`] over worker endpoints.
#[derive(Debug)]
pub struct ShardedDriver {
    endpoints: Vec<Endpoint>,
    cfg: DriverConfig,
    last_stats: Mutex<DriverStats>,
}

impl ShardedDriver {
    /// A driver dispatching to `endpoints` under `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `endpoints` is empty or `cfg.shard_points`/
    /// `cfg.max_attempts` is zero.
    pub fn new(endpoints: Vec<Endpoint>, cfg: DriverConfig) -> Self {
        assert!(!endpoints.is_empty(), "a sharded driver needs at least one endpoint");
        assert!(cfg.shard_points > 0, "shard_points must be positive");
        assert!(cfg.max_attempts > 0, "max_attempts must be positive");
        ShardedDriver {
            endpoints,
            cfg,
            last_stats: Mutex::new(DriverStats::default()),
        }
    }

    /// Statistics of the most recent [`CampaignExecutor::execute`] call.
    pub fn stats(&self) -> DriverStats {
        *self.last_stats.lock().expect("stats lock")
    }

    /// Executes the spec sequence across the endpoints; one outcome per
    /// spec, in spec order. Never panics on worker/transport failures —
    /// those degrade into per-point [`PointError`]s.
    ///
    /// # Panics
    ///
    /// Panics only on *configuration* errors: an unusable journal (wrong
    /// campaign, unwritable path) — misconfigurations to surface, not
    /// tolerate.
    pub fn execute_sharded(&self, specs: &[RunSpec]) -> Vec<PointOutcome> {
        let mut outcomes: Vec<Option<PointOutcome>> = vec![None; specs.len()];
        let mut stats = DriverStats::default();

        let journal = self.open_journal(specs, &mut outcomes, &mut stats);

        // Shard the points the journal did not cover.
        let pending: Vec<usize> = (0..specs.len()).filter(|&i| outcomes[i].is_none()).collect();
        let shards: Vec<Shard> = pending
            .chunks(self.cfg.shard_points)
            .enumerate()
            .map(|(id, indices)| Shard {
                id: id as u64,
                indices: indices.to_vec(),
            })
            .collect();
        stats.shards = shards.len() as u64;

        if !shards.is_empty() {
            let (addrs, mut children) = self.resolve_endpoints();
            self.dispatch(specs, shards, &addrs, journal, &mut outcomes, &mut stats);
            for child in &mut children {
                let _ = child.kill();
                let _ = child.wait();
            }
        }

        stats.failed_points = outcomes
            .iter()
            .filter(|o| matches!(o, Some(Err(_))))
            .count() as u64;
        *self.last_stats.lock().expect("stats lock") = stats;
        outcomes
            .into_iter()
            .map(|o| o.expect("every spec resolves to an outcome"))
            .collect()
    }

    fn open_journal(
        &self,
        specs: &[RunSpec],
        outcomes: &mut [Option<PointOutcome>],
        stats: &mut DriverStats,
    ) -> Option<Journal> {
        let path = self.cfg.journal.as_ref()?;
        if self.cfg.resume {
            let (journal, recovered) = Journal::resume(path, specs)
                .unwrap_or_else(|e| panic!("cannot resume journal {}: {e}", path.display()));
            for (i, record) in recovered.into_iter().enumerate() {
                let Some(record) = record else { continue };
                stats.journal_resumed += 1;
                outcomes[i] = Some(match record {
                    JournalRecord::Ok(entry) => parse_entry(&entry, &specs[i].cache_key())
                        .map(Ok)
                        .expect("resume() validated every recovered entry"),
                    JournalRecord::Failed(message) => Err(PointError {
                        cache_key: specs[i].cache_key(),
                        message,
                    }),
                });
            }
            Some(journal)
        } else {
            Some(
                Journal::create(path, specs).unwrap_or_else(|e| {
                    panic!("cannot create journal {}: {e}", path.display())
                }),
            )
        }
    }

    /// Spawns process endpoints and collects every endpoint's address.
    /// An endpoint that fails to come up is skipped with a warning — the
    /// survivors (or, failing all, the no-live-workers path) carry on.
    fn resolve_endpoints(&self) -> (Vec<String>, Vec<Child>) {
        let mut addrs = Vec::new();
        let mut children = Vec::new();
        for ep in &self.endpoints {
            match ep {
                Endpoint::Tcp(addr) => addrs.push(addr.clone()),
                Endpoint::Process { program, args } => {
                    match spawn_worker(program, args) {
                        Ok((addr, child)) => {
                            addrs.push(addr);
                            children.push(child);
                        }
                        Err(e) => eprintln!(
                            "warning: worker endpoint {} failed to start: {e}",
                            program.display()
                        ),
                    }
                }
            }
        }
        (addrs, children)
    }

    fn dispatch(
        &self,
        specs: &[RunSpec],
        shards: Vec<Shard>,
        addrs: &[String],
        journal: Option<Journal>,
        outcomes: &mut Vec<Option<PointOutcome>>,
        stats: &mut DriverStats,
    ) {
        let fail_all = |outcomes: &mut Vec<Option<PointOutcome>>, shards: &[Shard], why: &str| {
            for shard in shards {
                for &gi in &shard.indices {
                    outcomes[gi] = Some(Err(PointError {
                        cache_key: specs[gi].cache_key(),
                        message: why.to_string(),
                    }));
                }
            }
        };
        if addrs.is_empty() {
            fail_all(outcomes, &shards, "no worker endpoint is reachable");
            return;
        }

        let state = Mutex::new(State {
            queue: shards.iter().map(|s| (Instant::now(), s.id)).collect(),
            shards: shards
                .iter()
                .map(|s| {
                    (
                        s.id,
                        ShardState {
                            indices: s.indices.clone(),
                            attempts: 0,
                            in_flight: 0,
                            started: None,
                            speculated: false,
                            done: false,
                        },
                    )
                })
                .collect(),
            outcomes: std::mem::take(outcomes),
            remaining: shards.len(),
            active_endpoints: addrs.len(),
            journal,
            stats: std::mem::take(stats),
        });
        let cv = Condvar::new();

        std::thread::scope(|scope| {
            for addr in addrs {
                scope.spawn(|| self.endpoint_loop(addr, specs, &state, &cv));
            }
        });

        let mut st = state.into_inner().expect("state lock");
        *outcomes = std::mem::take(&mut st.outcomes);
        *stats = st.stats;
    }

    /// One endpoint's worker loop: claim a shard (fresh, retried, or
    /// speculative), run it, and fold the result into the shared state.
    fn endpoint_loop(
        &self,
        addr: &str,
        specs: &[RunSpec],
        state: &Mutex<State>,
        cv: &Condvar,
    ) {
        let mut consecutive_failures = 0u32;
        loop {
            let Some((shard_id, shard_specs, indices)) = self.claim(specs, state, cv) else {
                return;
            };
            match run_shard_on(addr, shard_id, &shard_specs, self.cfg.read_timeout) {
                Ok(results) => {
                    consecutive_failures = 0;
                    let mut st = state.lock().expect("state lock");
                    st.complete(shard_id, &indices, results, specs);
                    cv.notify_all();
                }
                Err(e) => {
                    consecutive_failures += 1;
                    let mut st = state.lock().expect("state lock");
                    st.fail_attempt(shard_id, &e, specs, &self.cfg);
                    if consecutive_failures >= self.cfg.endpoint_failure_limit {
                        st.retire_endpoint(specs);
                        cv.notify_all();
                        return;
                    }
                    cv.notify_all();
                }
            }
        }
    }

    /// Blocks until there is a shard to run (or nothing left to do).
    /// Returns the shard id, its specs, and their global indices.
    fn claim(
        &self,
        specs: &[RunSpec],
        state: &Mutex<State>,
        cv: &Condvar,
    ) -> Option<(u64, Vec<RunSpec>, Vec<usize>)> {
        let mut st = state.lock().expect("state lock");
        loop {
            if st.remaining == 0 {
                return None;
            }
            let now = Instant::now();
            let stx = &mut *st;
            // Fresh or retried work first.
            if let Some(pos) = stx.queue.iter().position(|&(ready, _)| ready <= now) {
                let (_, id) = stx.queue.swap_remove(pos);
                let s = stx.shards.get_mut(&id).expect("queued shard exists");
                s.in_flight += 1;
                s.started = Some(now);
                let indices = s.indices.clone();
                stx.stats.dispatches += 1;
                let shard_specs = indices.iter().map(|&i| specs[i].clone()).collect();
                return Some((id, shard_specs, indices));
            }
            // Otherwise speculate on a straggler.
            if let Some(after) = self.cfg.speculate_after {
                let candidate = stx.shards.iter_mut().find_map(|(&id, s)| {
                    let straggling = !s.done
                        && s.in_flight == 1
                        && !s.speculated
                        && s.started.is_some_and(|t| now.duration_since(t) >= after);
                    if straggling {
                        s.in_flight += 1;
                        s.speculated = true;
                        Some((id, s.indices.clone()))
                    } else {
                        None
                    }
                });
                if let Some((id, indices)) = candidate {
                    stx.stats.dispatches += 1;
                    stx.stats.speculative += 1;
                    let shard_specs = indices.iter().map(|&i| specs[i].clone()).collect();
                    return Some((id, shard_specs, indices));
                }
            }
            // Nothing runnable: sleep until the earliest backoff expiry
            // (or a completion wakes us).
            let wait = st
                .queue
                .iter()
                .map(|&(ready, _)| ready.saturating_duration_since(now))
                .min()
                .unwrap_or(Duration::from_millis(100))
                .max(Duration::from_millis(1));
            let (guard, _) = cv.wait_timeout(st, wait).expect("state lock");
            st = guard;
        }
    }
}

impl CampaignExecutor for ShardedDriver {
    fn execute(&self, specs: &[RunSpec]) -> Vec<PointOutcome> {
        self.execute_sharded(specs)
    }
}

/// One shard: consecutive pending points of the spec sequence.
struct Shard {
    id: u64,
    indices: Vec<usize>,
}

struct ShardState {
    indices: Vec<usize>,
    /// Failed attempts so far.
    attempts: u32,
    /// Concurrent dispatches (2 while a speculative twin runs).
    in_flight: u32,
    /// When the latest dispatch started.
    started: Option<Instant>,
    /// This generation already has a speculative twin.
    speculated: bool,
    done: bool,
}

struct State {
    /// Shards awaiting (re-)dispatch, each with its earliest start time.
    queue: Vec<(Instant, u64)>,
    shards: HashMap<u64, ShardState>,
    outcomes: Vec<Option<PointOutcome>>,
    /// Shards not yet done.
    remaining: usize,
    active_endpoints: usize,
    journal: Option<Journal>,
    stats: DriverStats,
}

impl State {
    fn complete(
        &mut self,
        shard_id: u64,
        indices: &[usize],
        results: Vec<PointOutcome>,
        specs: &[RunSpec],
    ) {
        let s = self.shards.get_mut(&shard_id).expect("completed shard exists");
        s.in_flight = s.in_flight.saturating_sub(1);
        if s.done {
            return; // the speculative twin already delivered
        }
        s.done = true;
        self.remaining -= 1;
        for (&gi, outcome) in indices.iter().zip(results) {
            if let Some(journal) = &mut self.journal {
                let io = match &outcome {
                    Ok(metrics) => {
                        journal.record_ok(gi, &render_entry(&specs[gi].cache_key(), metrics))
                    }
                    Err(e) => journal.record_failed(gi, e),
                };
                if let Err(e) = io {
                    eprintln!("warning: journal write failed: {e} (resume will re-run this point)");
                }
            }
            self.outcomes[gi] = Some(outcome);
        }
    }

    fn fail_attempt(
        &mut self,
        shard_id: u64,
        err: &WireError,
        specs: &[RunSpec],
        cfg: &DriverConfig,
    ) {
        self.stats.failed_attempts += 1;
        let s = self.shards.get_mut(&shard_id).expect("failed shard exists");
        s.in_flight = s.in_flight.saturating_sub(1);
        if s.done {
            return; // the twin already delivered
        }
        s.attempts += 1;
        if s.in_flight > 0 {
            return; // a twin is still running; it may yet deliver
        }
        let attempts = s.attempts;
        if attempts >= cfg.max_attempts {
            // Exhausted: the shard's points degrade into explicit errors.
            s.done = true;
            let indices = s.indices.clone();
            self.remaining -= 1;
            let message = format!(
                "shard {shard_id} exhausted {attempts} dispatch attempts; last error: {err}"
            );
            for gi in indices {
                self.outcomes[gi] = Some(Err(PointError {
                    cache_key: specs[gi].cache_key(),
                    message: message.clone(),
                }));
            }
        } else {
            s.speculated = false; // the retry may be speculated anew
            self.stats.retries += 1;
            let delay = backoff_delay(cfg, shard_id, attempts);
            self.queue.push((Instant::now() + delay, shard_id));
        }
    }

    /// An endpoint gave up. If it was the last one, drain every
    /// unfinished shard into explicit point errors — with no workers
    /// left, waiting would hang the campaign forever.
    fn retire_endpoint(&mut self, specs: &[RunSpec]) {
        self.active_endpoints = self.active_endpoints.saturating_sub(1);
        if self.active_endpoints > 0 || self.remaining == 0 {
            return;
        }
        let undone: Vec<u64> = self
            .shards
            .iter()
            .filter(|(_, s)| !s.done)
            .map(|(&id, _)| id)
            .collect();
        for id in undone {
            let s = self.shards.get_mut(&id).expect("shard exists");
            s.done = true;
            let indices = s.indices.clone();
            self.remaining -= 1;
            for gi in indices {
                self.outcomes[gi] = Some(Err(PointError {
                    cache_key: specs[gi].cache_key(),
                    message: "no live worker endpoints remain".to_string(),
                }));
            }
        }
    }
}

/// Deterministic backoff: exponential in the attempt number, capped,
/// scaled by a jitter factor in `[0.5, 1.0)` seeded from
/// `(backoff_seed, shard, attempt)` — the schedule is a pure function of
/// the configuration, never of wall-clock or thread timing.
fn backoff_delay(cfg: &DriverConfig, shard: u64, attempt: u32) -> Duration {
    let exp = cfg
        .backoff_base
        .saturating_mul(1u32 << (attempt - 1).min(16))
        .min(cfg.backoff_cap);
    let mut rng = SimRng::new(
        cfg.backoff_seed
            ^ shard.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ u64::from(attempt),
    );
    exp.mul_f64(0.5 + 0.5 * rng.next_f64())
}

/// Dispatches one shard over one fresh connection and collects its
/// results. Any protocol irregularity — short stream, wrong shard id,
/// an entry that does not verify against its spec's canonical key — is
/// an error (and therefore a retry), never silently wrong data.
fn run_shard_on(
    addr: &str,
    shard_id: u64,
    shard_specs: &[RunSpec],
    read_timeout: Duration,
) -> Result<Vec<PointOutcome>, WireError> {
    let stream = TcpStream::connect(addr).map_err(WireError::Io)?;
    stream.set_read_timeout(Some(read_timeout)).map_err(WireError::Io)?;
    let _ = stream.set_nodelay(true);
    let mut writer = &stream;
    write_frame(
        &mut writer,
        &Message::ShardRequest {
            shard: shard_id,
            specs: shard_specs.to_vec(),
        },
    )?;
    let mut reader = &stream;
    let mut got: Vec<Option<PointOutcome>> = vec![None; shard_specs.len()];
    loop {
        match read_frame(&mut reader)? {
            Message::Heartbeat => {}
            Message::PointOk { shard, index, entry } => {
                let i = check_point(shard_id, shard, index, shard_specs.len())?;
                let key = shard_specs[i].cache_key();
                let metrics = parse_entry(&entry, &key).ok_or_else(|| {
                    WireError::Malformed(format!(
                        "result entry for point {index} does not verify against its spec"
                    ))
                })?;
                got[i] = Some(Ok(metrics));
            }
            Message::PointFailed { shard, index, error } => {
                let i = check_point(shard_id, shard, index, shard_specs.len())?;
                got[i] = Some(Err(PointError {
                    cache_key: shard_specs[i].cache_key(),
                    message: error,
                }));
            }
            Message::ShardDone { shard, points } => {
                if shard != shard_id {
                    return Err(WireError::Malformed(format!(
                        "shard-done for shard {shard}, expected {shard_id}"
                    )));
                }
                if points as usize != shard_specs.len() || got.iter().any(Option::is_none) {
                    return Err(WireError::Malformed(format!(
                        "short shard: worker sent {points} of {} points",
                        shard_specs.len()
                    )));
                }
                return Ok(got.into_iter().map(|o| o.expect("checked above")).collect());
            }
            Message::ShardRequest { .. } => {
                return Err(WireError::Malformed(
                    "worker sent a shard request to the driver".into(),
                ))
            }
        }
    }
}

fn check_point(expected: u64, shard: u64, index: u32, len: usize) -> Result<usize, WireError> {
    if shard != expected {
        return Err(WireError::Malformed(format!(
            "result for shard {shard}, expected {expected}"
        )));
    }
    let i = index as usize;
    if i >= len {
        return Err(WireError::Malformed(format!(
            "point index {index} out of range (shard has {len} points)"
        )));
    }
    Ok(i)
}

/// Spawns a worker process with `--listen 127.0.0.1:0` and reads its
/// `listening <addr>` banner.
fn spawn_worker(
    program: &std::path::Path,
    args: &[String],
) -> std::io::Result<(String, Child)> {
    let mut child = Command::new(program)
        .args(args)
        .args(["--listen", "127.0.0.1:0"])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()?;
    let stdout = child.stdout.take().expect("stdout is piped");
    let mut line = String::new();
    std::io::BufReader::new(stdout).read_line(&mut line)?;
    match line.trim().strip_prefix("listening ") {
        Some(addr) if !addr.is_empty() => Ok((addr.to_string(), child)),
        _ => {
            let _ = child.kill();
            let _ = child.wait();
            Err(std::io::Error::other(format!(
                "worker did not announce its address (got `{}`)",
                line.trim()
            )))
        }
    }
}
