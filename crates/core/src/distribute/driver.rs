//! The sharded campaign driver: partitions a spec sequence into shards,
//! dispatches them to workers, and survives every failure mode the wire
//! can produce.
//!
//! The driver is a [`CampaignExecutor`]: `Campaign::run_on(&driver)`
//! behaves exactly like running on a local [`crate::runner::BatchRunner`]
//! — bit-identically, for every successful point — except that points
//! execute on worker endpoints ([`Endpoint::Tcp`] peers, or
//! [`Endpoint::Process`] workers the driver spawns itself).
//!
//! ## Trace shipping and capability-aware placement
//!
//! Trace workloads travel by content hash (`trace@<contenthash>` on the
//! wire), never by path. Each connection opens with the
//! `Hello`/`HelloAck` capability handshake, which tells the driver the
//! worker's core count, whether it has a `--trace-store`, and which
//! trace hashes the store holds. Shard placement prefers endpoints
//! already holding a shard's traces ([`DriverStats::trace_reuses`]);
//! otherwise the driver ships the archive ahead of the shard request in
//! [`DriverConfig::chunk_bytes`] chunks ([`DriverStats::trace_ships`]),
//! resuming interrupted transfers from the worker-reported staged
//! length ([`DriverStats::trace_resume_bytes`]).
//!
//! ## Failure model
//!
//! * **Dead or silent worker** — every read carries the
//!   [`DriverConfig::read_timeout`]; workers heartbeat far more often
//!   than that, so a timeout means the worker is gone, not slow.
//! * **Failed shard attempt** — the shard returns to the queue after a
//!   seeded exponential backoff with jitter
//!   ([`DriverConfig::backoff_base`]/`backoff_cap`/`backoff_seed`), up
//!   to [`DriverConfig::max_attempts`] dispatches. Any surviving
//!   endpoint can pick up the retry.
//! * **Straggler** — once a shard's only dispatch has been running
//!   longer than [`DriverConfig::speculate_after`], an idle endpoint
//!   re-dispatches it speculatively; the first completion wins and the
//!   loser is discarded (results are bit-identical either way).
//! * **Flaky endpoint** — an endpoint that fails
//!   [`DriverConfig::endpoint_failure_limit`] consecutive attempts
//!   retires; its queued work drains to the survivors.
//! * **Trace provisioning failure** — an endpoint with no trace store,
//!   or one that repeatedly fails trace transfers
//!   ([`DriverConfig::endpoint_failure_limit`] consecutive times), is
//!   retired from *trace-bearing* shards only: it stays eligible for
//!   synthetic/open-loop points. When no trace-capable endpoint
//!   remains, pending trace shards degrade into [`PointError`]s while
//!   the rest of the campaign continues.
//! * **Exhausted retries / no survivors** — the affected points degrade
//!   into [`PointError`]s naming the last transport error; the campaign
//!   completes and reports them in its failed set instead of aborting.
//! * **Dispatcher panic** — a panicking dispatcher thread is contained
//!   with `catch_unwind`: its in-flight shard fails (and retries
//!   elsewhere), its endpoint retires, and the shared state's locks are
//!   poison-tolerant, so the campaign thread never inherits the panic.
//! * **Driver crash** — with [`DriverConfig::journal`], every completed
//!   point is journaled (flushed per record); `resume: true` replays the
//!   journal and dispatches only what it does not cover
//!   (`super::journal`).

use super::journal::{Journal, JournalRecord};
use super::store::archive_trace;
use super::wire::{
    encode_frame, read_frame, write_frame, Message, WireError, VERSION,
};
use crate::cache::{parse_entry, render_entry};
use crate::campaign::CampaignExecutor;
use crate::runner::{panic_message, PointError, PointOutcome, RunSpec};
use nocout_sim::rng::SimRng;
use nocout_workloads::trace::TraceSet;
use nocout_workloads::WorkloadClass;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::io::{self, BufRead, Read as _, Write as _};
use std::net::TcpStream;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Locks a mutex, tolerating poisoning: a panicking dispatcher thread
/// must degrade its shard, not cascade a `PoisonError` panic into every
/// other dispatcher and the campaign thread. The guarded state stays
/// consistent across a poison because every mutation below is
/// single-assignment per point/shard (no multi-step invariants span an
/// unlock).
fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Where a worker lives.
#[derive(Debug, Clone)]
pub enum Endpoint {
    /// An already-running worker listening on `host:port`.
    Tcp(String),
    /// A worker process the driver spawns. `--listen 127.0.0.1:0` is
    /// appended to `args`; the worker must print `listening <addr>` on
    /// stdout once bound (as `nocout-worker` does). The driver kills the
    /// process when execution finishes.
    Process {
        /// The worker executable.
        program: PathBuf,
        /// Arguments before the appended `--listen`.
        args: Vec<String>,
    },
}

/// A typed worker-endpoint failure: names the worker binary and carries
/// its captured stderr, so a bad `--worker-bin` degrades points with a
/// diagnosable message instead of panicking the driver.
#[derive(Debug)]
pub enum DriverError {
    /// The worker process failed to spawn at all.
    WorkerSpawn {
        /// The worker executable that failed.
        program: PathBuf,
        /// The underlying spawn error.
        error: io::Error,
    },
    /// The spawned worker never announced `listening <addr>` on stdout.
    WorkerBanner {
        /// The worker executable that misbehaved.
        program: PathBuf,
        /// What the worker printed instead (possibly empty).
        banner: String,
        /// The worker's captured stderr (its own diagnosis, e.g. an
        /// unknown flag or an unbindable address).
        stderr: String,
    },
}

impl fmt::Display for DriverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DriverError::WorkerSpawn { program, error } => {
                write!(f, "cannot spawn worker `{}`: {error}", program.display())
            }
            DriverError::WorkerBanner { program, banner, stderr } => {
                write!(
                    f,
                    "worker `{}` did not announce its address (got `{banner}`)",
                    program.display()
                )?;
                if !stderr.trim().is_empty() {
                    write!(f, "; its stderr: {}", stderr.trim())?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for DriverError {}

/// Tuning knobs of the sharded driver. The defaults suit local process
/// pools on a loaded machine: generous timeouts, fast first retry.
#[derive(Debug, Clone)]
pub struct DriverConfig {
    /// Specs per shard (the retry/journal granularity).
    pub shard_points: usize,
    /// Total dispatch attempts per shard before its points degrade into
    /// [`PointError`]s.
    pub max_attempts: u32,
    /// First-retry backoff; attempt *n* waits `base * 2^(n-1)`, capped.
    pub backoff_base: Duration,
    /// Upper bound on the exponential backoff.
    pub backoff_cap: Duration,
    /// Seed of the deterministic backoff jitter (each delay is scaled by
    /// a factor in `[0.5, 1.0)` drawn from
    /// `SimRng::new(seed ^ shard ^ attempt)` — reproducible schedules
    /// for tests, decorrelated retries in production).
    pub backoff_seed: u64,
    /// Per-read deadline. Workers heartbeat every ~200 ms, so this is a
    /// liveness bound, not a per-point time budget; keep it large (the
    /// default is 30 s) — a expiry means a dead worker.
    pub read_timeout: Duration,
    /// Re-dispatch a shard speculatively once its only dispatch has been
    /// in flight this long and an endpoint is idle. `None` disables
    /// speculation.
    pub speculate_after: Option<Duration>,
    /// Consecutive failed attempts after which an endpoint retires (and,
    /// separately, consecutive failed *trace provisionings* after which
    /// an endpoint is retired from trace-bearing shards only).
    pub endpoint_failure_limit: u32,
    /// Trace archive bytes per [`Message::TraceChunk`] frame. The
    /// default (4 MiB) keeps frames far under the wire's payload bound;
    /// tests shrink it to force multi-chunk transfers.
    pub chunk_bytes: usize,
    /// Deterministic chaos: flip one payload byte of the N-th outbound
    /// trace chunk (0-based, counted across the whole execution) after
    /// its digest is computed. The worker's frame check rejects the
    /// chunk, the transfer fails, and the retry must resume and still
    /// produce bit-identical results — the CI trace chaos gate.
    pub fault_corrupt_chunk: Option<u64>,
    /// Campaign manifest journal path (`super::journal`).
    pub journal: Option<PathBuf>,
    /// Replay an existing journal instead of truncating it.
    pub resume: bool,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            shard_points: 4,
            max_attempts: 4,
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(2),
            backoff_seed: 0x6e6f_636f_7574, // "nocout"
            read_timeout: Duration::from_secs(30),
            speculate_after: None,
            endpoint_failure_limit: 3,
            chunk_bytes: 4 * 1024 * 1024,
            fault_corrupt_chunk: None,
            journal: None,
            resume: false,
        }
    }
}

/// What one execution did, for reporting and tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct DriverStats {
    /// Shards the spec sequence partitioned into (after journal replay).
    pub shards: u64,
    /// Shard dispatches, including retries and speculation.
    pub dispatches: u64,
    /// Re-dispatches caused by failed attempts.
    pub retries: u64,
    /// Speculative re-dispatches of stragglers.
    pub speculative: u64,
    /// Failed shard attempts (transport, protocol, or trace
    /// provisioning errors).
    pub failed_attempts: u64,
    /// Points recovered from the journal instead of dispatched.
    pub journal_resumed: u64,
    /// Points that degraded into [`PointError`]s.
    pub failed_points: u64,
    /// Completed trace-archive shipments to workers.
    pub trace_ships: u64,
    /// Trace-bearing dispatches served from a worker's already-held
    /// store entry (no bytes shipped).
    pub trace_reuses: u64,
    /// Archive bytes skipped by resuming interrupted transfers from the
    /// worker's staged partial.
    pub trace_resume_bytes: u64,
}

/// A fault-tolerant [`CampaignExecutor`] over worker endpoints.
#[derive(Debug)]
pub struct ShardedDriver {
    endpoints: Vec<Endpoint>,
    cfg: DriverConfig,
    last_stats: Mutex<DriverStats>,
    /// Outbound trace chunks sent, driver-wide (drives
    /// [`DriverConfig::fault_corrupt_chunk`]).
    chunks_sent: AtomicU64,
}

impl ShardedDriver {
    /// A driver dispatching to `endpoints` under `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `endpoints` is empty or `cfg.shard_points`/
    /// `cfg.max_attempts`/`cfg.chunk_bytes` is zero.
    pub fn new(endpoints: Vec<Endpoint>, cfg: DriverConfig) -> Self {
        assert!(!endpoints.is_empty(), "a sharded driver needs at least one endpoint");
        assert!(cfg.shard_points > 0, "shard_points must be positive");
        assert!(cfg.max_attempts > 0, "max_attempts must be positive");
        assert!(cfg.chunk_bytes > 0, "chunk_bytes must be positive");
        ShardedDriver {
            endpoints,
            cfg,
            last_stats: Mutex::new(DriverStats::default()),
            chunks_sent: AtomicU64::new(0),
        }
    }

    /// Statistics of the most recent [`CampaignExecutor::execute`] call.
    pub fn stats(&self) -> DriverStats {
        *relock(&self.last_stats)
    }

    /// Executes the spec sequence across the endpoints; one outcome per
    /// spec, in spec order. Never panics on worker/transport failures —
    /// those degrade into per-point [`PointError`]s.
    ///
    /// # Panics
    ///
    /// Panics only on *configuration* errors: an unusable journal (wrong
    /// campaign, unwritable path) — misconfigurations to surface, not
    /// tolerate.
    pub fn execute_sharded(&self, specs: &[RunSpec]) -> Vec<PointOutcome> {
        let mut outcomes: Vec<Option<PointOutcome>> = vec![None; specs.len()];
        let mut stats = DriverStats::default();

        let journal = self.open_journal(specs, &mut outcomes, &mut stats);

        // The hash → TraceSet registry: every trace the campaign touches,
        // resolvable locally so any endpoint can be provisioned.
        let mut registry: HashMap<u64, Arc<TraceSet>> = HashMap::new();
        for spec in specs {
            if let WorkloadClass::Trace(t) = &spec.workload {
                registry.entry(t.content_hash()).or_insert_with(|| t.clone());
            }
        }

        // Shard the points the journal did not cover.
        let pending: Vec<usize> = (0..specs.len()).filter(|&i| outcomes[i].is_none()).collect();
        let shards: Vec<Shard> = pending
            .chunks(self.cfg.shard_points)
            .enumerate()
            .map(|(id, indices)| {
                let mut hashes: Vec<u64> = indices
                    .iter()
                    .filter_map(|&i| match &specs[i].workload {
                        WorkloadClass::Trace(t) => Some(t.content_hash()),
                        _ => None,
                    })
                    .collect();
                hashes.sort_unstable();
                hashes.dedup();
                Shard { id: id as u64, indices: indices.to_vec(), hashes }
            })
            .collect();
        stats.shards = shards.len() as u64;

        if !shards.is_empty() {
            let (addrs, mut children) = self.resolve_endpoints();
            self.dispatch(specs, shards, &addrs, &registry, journal, &mut outcomes, &mut stats);
            for child in &mut children {
                let _ = child.kill();
                let _ = child.wait();
            }
        }

        stats.failed_points = outcomes
            .iter()
            .filter(|o| matches!(o, Some(Err(_))))
            .count() as u64;
        *relock(&self.last_stats) = stats;
        outcomes
            .into_iter()
            .enumerate()
            .map(|(i, o)| {
                // A point no dispatcher resolved (it panicked between
                // claiming and folding) degrades instead of panicking the
                // campaign thread.
                o.unwrap_or_else(|| {
                    Err(PointError {
                        cache_key: specs[i].cache_key(),
                        message: "dispatch ended without resolving this point \
                                  (dispatcher failure)"
                            .into(),
                    })
                })
            })
            .collect()
    }

    fn open_journal(
        &self,
        specs: &[RunSpec],
        outcomes: &mut [Option<PointOutcome>],
        stats: &mut DriverStats,
    ) -> Option<Journal> {
        let path = self.cfg.journal.as_ref()?;
        if self.cfg.resume {
            let (journal, recovered) = Journal::resume(path, specs)
                .unwrap_or_else(|e| panic!("cannot resume journal {}: {e}", path.display()));
            for (i, record) in recovered.into_iter().enumerate() {
                let Some(record) = record else { continue };
                stats.journal_resumed += 1;
                outcomes[i] = Some(match record {
                    JournalRecord::Ok(entry) => parse_entry(&entry, &specs[i].cache_key())
                        .map(Ok)
                        .expect("resume() validated every recovered entry"),
                    JournalRecord::Failed(message) => Err(PointError {
                        cache_key: specs[i].cache_key(),
                        message,
                    }),
                });
            }
            Some(journal)
        } else {
            Some(
                Journal::create(path, specs).unwrap_or_else(|e| {
                    panic!("cannot create journal {}: {e}", path.display())
                }),
            )
        }
    }

    /// Spawns process endpoints and collects every endpoint's address.
    /// An endpoint that fails to come up is skipped with a warning — the
    /// survivors (or, failing all, the no-live-workers path) carry on.
    fn resolve_endpoints(&self) -> (Vec<String>, Vec<Child>) {
        let mut addrs = Vec::new();
        let mut children = Vec::new();
        for ep in &self.endpoints {
            match ep {
                Endpoint::Tcp(addr) => addrs.push(addr.clone()),
                Endpoint::Process { program, args } => {
                    match spawn_worker(program, args) {
                        Ok((addr, child)) => {
                            addrs.push(addr);
                            children.push(child);
                        }
                        Err(e) => eprintln!("warning: {e}"),
                    }
                }
            }
        }
        (addrs, children)
    }

    #[allow(clippy::too_many_arguments)]
    fn dispatch(
        &self,
        specs: &[RunSpec],
        shards: Vec<Shard>,
        addrs: &[String],
        registry: &HashMap<u64, Arc<TraceSet>>,
        journal: Option<Journal>,
        outcomes: &mut Vec<Option<PointOutcome>>,
        stats: &mut DriverStats,
    ) {
        let fail_all = |outcomes: &mut Vec<Option<PointOutcome>>, shards: &[Shard], why: &str| {
            for shard in shards {
                for &gi in &shard.indices {
                    outcomes[gi] = Some(Err(PointError {
                        cache_key: specs[gi].cache_key(),
                        message: why.to_string(),
                    }));
                }
            }
        };
        if addrs.is_empty() {
            fail_all(outcomes, &shards, "no worker endpoint is reachable");
            return;
        }

        let state = Mutex::new(State {
            queue: shards.iter().map(|s| (Instant::now(), s.id)).collect(),
            shards: shards
                .iter()
                .map(|s| {
                    (
                        s.id,
                        ShardState {
                            indices: s.indices.clone(),
                            hashes: s.hashes.clone(),
                            attempts: 0,
                            in_flight: 0,
                            started: None,
                            speculated: false,
                            done: false,
                        },
                    )
                })
                .collect(),
            outcomes: std::mem::take(outcomes),
            remaining: shards.len(),
            active_endpoints: addrs.len(),
            trace_capable_endpoints: addrs.len(),
            journal,
            stats: std::mem::take(stats),
        });
        let cv = Condvar::new();

        std::thread::scope(|scope| {
            for addr in addrs {
                scope.spawn(|| self.endpoint_loop(addr, specs, registry, &state, &cv));
            }
        });

        let mut st = state.into_inner().unwrap_or_else(PoisonError::into_inner);
        *outcomes = std::mem::take(&mut st.outcomes);
        *stats = st.stats;
    }

    /// One endpoint's worker loop: claim a shard it is capable of
    /// (fresh, retried, or speculative — preferring shards whose traces
    /// it already holds), provision and run it, and fold the result into
    /// the shared state. A panic anywhere in the attempt is contained:
    /// the shard fails (and retries elsewhere), the endpoint retires.
    fn endpoint_loop(
        &self,
        addr: &str,
        specs: &[RunSpec],
        registry: &HashMap<u64, Arc<TraceSet>>,
        state: &Mutex<State>,
        cv: &Condvar,
    ) {
        let mut consecutive_failures = 0u32;
        let mut caps = Caps::default();
        loop {
            let Some((shard_id, shard_specs, indices, hashes)) =
                self.claim(specs, state, cv, &caps)
            else {
                return;
            };
            let attempt = catch_unwind(AssertUnwindSafe(|| {
                self.run_shard_on(addr, shard_id, &shard_specs, &hashes, &mut caps, registry)
            }));
            match attempt {
                Ok(Ok((results, report))) => {
                    consecutive_failures = 0;
                    caps.trace_failures = 0;
                    let mut st = relock(state);
                    st.stats.absorb(&report);
                    st.complete(shard_id, &indices, results, specs);
                    self.sync_trace_capability(&mut caps, &mut st, specs);
                    cv.notify_all();
                }
                Ok(Err(fail)) => {
                    let mut st = relock(state);
                    st.stats.absorb(&fail.report);
                    st.fail_attempt(shard_id, &fail.err, specs, &self.cfg);
                    match fail.phase {
                        Phase::Execute => {
                            consecutive_failures += 1;
                            if consecutive_failures >= self.cfg.endpoint_failure_limit {
                                st.retire_endpoint(specs, caps.trace_capable());
                                cv.notify_all();
                                return;
                            }
                        }
                        Phase::Provision => {
                            // Trace provisioning failures retire the
                            // endpoint from trace-bearing shards only —
                            // it stays eligible for synthetic points.
                            caps.trace_failures += 1;
                            if caps.trace_failures >= self.cfg.endpoint_failure_limit {
                                caps.storeless_or_failed = true;
                            }
                        }
                    }
                    self.sync_trace_capability(&mut caps, &mut st, specs);
                    cv.notify_all();
                }
                Err(panic) => {
                    // Satellite contract: a panicking dispatcher thread
                    // degrades its shard and retires, never cascading the
                    // unwind into the campaign thread.
                    let mut st = relock(state);
                    st.fail_attempt(
                        shard_id,
                        &WireError::Malformed(format!(
                            "dispatcher thread panicked: {}",
                            panic_message(panic)
                        )),
                        specs,
                        &self.cfg,
                    );
                    st.retire_endpoint(specs, caps.trace_capable());
                    cv.notify_all();
                    return;
                }
            }
        }
    }

    /// If this endpoint has (newly) turned out trace-incapable — no
    /// store in its handshake, or too many provisioning failures — tell
    /// the shared state so pending trace shards can degrade once no
    /// capable endpoint remains.
    fn sync_trace_capability(&self, caps: &mut Caps, st: &mut State, specs: &[RunSpec]) {
        if !caps.trace_retired && !caps.trace_capable() {
            caps.trace_retired = true;
            st.drop_trace_capability(specs);
        }
    }

    /// Blocks until there is a shard this endpoint can run (or nothing
    /// left to do). Returns the shard id, its specs, their global
    /// indices, and the trace hashes the shard needs.
    fn claim(
        &self,
        specs: &[RunSpec],
        state: &Mutex<State>,
        cv: &Condvar,
        caps: &Caps,
    ) -> Option<ClaimedShard> {
        let mut st = relock(state);
        loop {
            if st.remaining == 0 {
                return None;
            }
            let now = Instant::now();
            let stx = &mut *st;
            // Fresh or retried work first: prefer shards whose traces
            // this endpoint already holds, then trace-free shards, then
            // (if trace-capable) shards that need a shipment.
            let mut held_pos = None;
            let mut free_pos = None;
            let mut ship_pos = None;
            let mut ready_but_ineligible = false;
            for (pos, &(ready, id)) in stx.queue.iter().enumerate() {
                if ready > now {
                    continue;
                }
                let Some(s) = stx.shards.get(&id) else { continue };
                if s.done {
                    continue;
                }
                if s.hashes.is_empty() {
                    free_pos.get_or_insert(pos);
                } else if s.hashes.iter().all(|h| caps.held.contains(h)) {
                    held_pos.get_or_insert(pos);
                } else if caps.trace_capable() {
                    ship_pos.get_or_insert(pos);
                } else {
                    ready_but_ineligible = true;
                }
            }
            if let Some(pos) = held_pos.or(free_pos).or(ship_pos) {
                let (_, id) = stx.queue.swap_remove(pos);
                let s = stx.shards.get_mut(&id).expect("queued shard exists");
                s.in_flight += 1;
                s.started = Some(now);
                let indices = s.indices.clone();
                let hashes = s.hashes.clone();
                stx.stats.dispatches += 1;
                let shard_specs = indices.iter().map(|&i| specs[i].clone()).collect();
                return Some((id, shard_specs, indices, hashes));
            }
            // Otherwise speculate on a straggler this endpoint can run.
            if let Some(after) = self.cfg.speculate_after {
                let candidate = stx.shards.iter_mut().find_map(|(&id, s)| {
                    let runnable = s.hashes.is_empty()
                        || s.hashes.iter().all(|h| caps.held.contains(h))
                        || caps.trace_capable();
                    let straggling = runnable
                        && !s.done
                        && s.in_flight == 1
                        && !s.speculated
                        && s.started.is_some_and(|t| now.duration_since(t) >= after);
                    if straggling {
                        s.in_flight += 1;
                        s.speculated = true;
                        Some((id, s.indices.clone(), s.hashes.clone()))
                    } else {
                        None
                    }
                });
                if let Some((id, indices, hashes)) = candidate {
                    stx.stats.dispatches += 1;
                    stx.stats.speculative += 1;
                    let shard_specs = indices.iter().map(|&i| specs[i].clone()).collect();
                    return Some((id, shard_specs, indices, hashes));
                }
            }
            // Nothing runnable *by this endpoint*: sleep until the
            // earliest backoff expiry or a completion wakes us. Work that
            // is ready but needs a capability we lack belongs to another
            // endpoint — poll it gently rather than spinning.
            let wait = if ready_but_ineligible {
                Duration::from_millis(20)
            } else {
                st.queue
                    .iter()
                    .map(|&(ready, _)| ready.saturating_duration_since(now))
                    .min()
                    .unwrap_or(Duration::from_millis(100))
                    .max(Duration::from_millis(1))
            };
            let (guard, _) = cv
                .wait_timeout(st, wait)
                .unwrap_or_else(PoisonError::into_inner);
            st = guard;
        }
    }

    /// Dispatches one shard over one fresh connection: capability
    /// handshake, trace provisioning (ship or reuse), the shard request,
    /// then the results. Any protocol irregularity — short stream, wrong
    /// shard id, an entry that does not verify against its spec's
    /// canonical key — is an error (and therefore a retry), never
    /// silently wrong data.
    fn run_shard_on(
        &self,
        addr: &str,
        shard_id: u64,
        shard_specs: &[RunSpec],
        hashes: &[u64],
        caps: &mut Caps,
        registry: &HashMap<u64, Arc<TraceSet>>,
    ) -> Result<(Vec<PointOutcome>, ShipReport), AttemptError> {
        let mut report = ShipReport::default();
        let exec = |err: WireError, report: ShipReport| AttemptError {
            phase: Phase::Execute,
            err,
            report,
        };
        let stream = match TcpStream::connect(addr) {
            Ok(s) => s,
            Err(e) => return Err(exec(WireError::Io(e), report)),
        };
        if let Err(e) = stream.set_read_timeout(Some(self.cfg.read_timeout)) {
            return Err(exec(WireError::Io(e), report));
        }
        let _ = stream.set_nodelay(true);
        let mut writer = &stream;
        let mut reader = &stream;

        // Capability handshake: refresh what this worker can do and what
        // it already holds (a restarted worker may have lost its store;
        // a sibling dispatch may have shipped meanwhile).
        if let Err(e) = write_frame(&mut writer, &Message::Hello { version: VERSION }) {
            return Err(exec(e, report));
        }
        match read_control(&mut reader) {
            Ok(Message::HelloAck { version: _, cores: _, store, trace_hashes }) => {
                caps.probed = true;
                caps.storeless_or_failed = !store;
                caps.held = trace_hashes.into_iter().collect();
            }
            Ok(other) => {
                return Err(exec(
                    WireError::Malformed(format!("expected a hello-ack, got {other:?}")),
                    report,
                ))
            }
            Err(e) => return Err(exec(e, report)),
        }

        // Trace provisioning: reuse what the worker holds, ship the rest.
        for &hash in hashes {
            if caps.held.contains(&hash) {
                report.reuses += 1;
                continue;
            }
            match self.ship_trace(&stream, hash, caps, registry, &mut report) {
                Ok(()) => {}
                Err(err) => return Err(AttemptError { phase: Phase::Provision, err, report }),
            }
        }

        let mut writer = &stream;
        if let Err(e) = write_frame(
            &mut writer,
            &Message::ShardRequest { shard: shard_id, specs: shard_specs.to_vec() },
        ) {
            return Err(exec(e, report));
        }
        let mut got: Vec<Option<PointOutcome>> = vec![None; shard_specs.len()];
        loop {
            let msg = match read_frame(&mut reader) {
                Ok(m) => m,
                Err(e) => return Err(exec(e, report)),
            };
            match msg {
                Message::Heartbeat => {}
                Message::PointOk { shard, index, entry } => {
                    let i = check_point(shard_id, shard, index, shard_specs.len())
                        .map_err(|e| exec(e, report))?;
                    let key = shard_specs[i].cache_key();
                    let metrics = parse_entry(&entry, &key).ok_or_else(|| {
                        exec(
                            WireError::Malformed(format!(
                                "result entry for point {index} does not verify against its spec"
                            )),
                            report,
                        )
                    })?;
                    got[i] = Some(Ok(metrics));
                }
                Message::PointFailed { shard, index, error } => {
                    let i = check_point(shard_id, shard, index, shard_specs.len())
                        .map_err(|e| exec(e, report))?;
                    got[i] = Some(Err(PointError {
                        cache_key: shard_specs[i].cache_key(),
                        message: error,
                    }));
                }
                Message::ShardDone { shard, points } => {
                    if shard != shard_id {
                        return Err(exec(
                            WireError::Malformed(format!(
                                "shard-done for shard {shard}, expected {shard_id}"
                            )),
                            report,
                        ));
                    }
                    if points as usize != shard_specs.len() || got.iter().any(Option::is_none) {
                        return Err(exec(
                            WireError::Malformed(format!(
                                "short shard: worker sent {points} of {} points",
                                shard_specs.len()
                            )),
                            report,
                        ));
                    }
                    let results = got.into_iter().map(|o| o.expect("checked above")).collect();
                    return Ok((results, report));
                }
                other => {
                    return Err(exec(
                        WireError::Malformed(format!(
                            "unexpected {other:?} frame while awaiting shard results"
                        )),
                        report,
                    ))
                }
            }
        }
    }

    /// Ships one trace archive to the connected worker, resuming from
    /// whatever the worker already staged. On success the worker has
    /// installed and hash-verified the trace.
    fn ship_trace(
        &self,
        stream: &TcpStream,
        hash: u64,
        caps: &mut Caps,
        registry: &HashMap<u64, Arc<TraceSet>>,
        report: &mut ShipReport,
    ) -> Result<(), WireError> {
        if caps.probed && caps.storeless_or_failed {
            return Err(WireError::Malformed(format!(
                "shard needs trace {hash:016x} but the worker has no --trace-store"
            )));
        }
        let set = registry.get(&hash).ok_or_else(|| {
            WireError::Malformed(format!(
                "shard needs trace {hash:016x} but the driver's registry does not hold it"
            ))
        })?;
        let archive = archive_trace(set).map_err(WireError::Io)?;
        let total = archive.len() as u64;
        let mut writer = stream;
        let mut reader = stream;
        write_frame(&mut writer, &Message::TraceOffer { hash, total_len: total })?;
        let have = read_trace_ack(&mut reader, hash)?;
        if have > total {
            return Err(WireError::Malformed(format!(
                "worker claims {have} staged bytes of a {total}-byte archive"
            )));
        }
        if have == total {
            // Already installed (a sibling dispatch shipped it between
            // our handshake and this offer).
            caps.held.insert(hash);
            report.reuses += 1;
            return Ok(());
        }
        report.resume_bytes += have;
        let mut off = have as usize;
        while off < archive.len() {
            let end = (off + self.cfg.chunk_bytes).min(archive.len());
            let mut frame = encode_frame(&Message::TraceChunk {
                hash,
                offset: off as u64,
                data: archive[off..end].to_vec(),
            })?;
            let chunk_no = self.chunks_sent.fetch_add(1, Ordering::SeqCst);
            if self.cfg.fault_corrupt_chunk == Some(chunk_no) {
                let last = frame.len() - 1;
                frame[last] ^= 0x01;
            }
            writer.write_all(&frame).map_err(WireError::from)?;
            off = end;
        }
        writer.flush().map_err(WireError::from)?;
        let have = read_trace_ack(&mut reader, hash)?;
        if have != total {
            return Err(WireError::Malformed(format!(
                "worker acked {have} of {total} archive bytes after the final chunk"
            )));
        }
        caps.held.insert(hash);
        report.ships += 1;
        Ok(())
    }
}

impl CampaignExecutor for ShardedDriver {
    fn execute(&self, specs: &[RunSpec]) -> Vec<PointOutcome> {
        self.execute_sharded(specs)
    }
}

/// Reads frames until a non-heartbeat arrives.
fn read_control<R: io::Read>(reader: &mut R) -> Result<Message, WireError> {
    loop {
        match read_frame(reader)? {
            Message::Heartbeat => {}
            m => return Ok(m),
        }
    }
}

/// Reads the next control frame, requiring a [`Message::TraceAck`] for
/// `hash`; returns its `have` byte count.
fn read_trace_ack<R: io::Read>(reader: &mut R, hash: u64) -> Result<u64, WireError> {
    match read_control(reader)? {
        Message::TraceAck { hash: h, have } if h == hash => Ok(have),
        other => Err(WireError::Malformed(format!(
            "expected a trace ack for {hash:016x}, got {other:?}"
        ))),
    }
}

/// A claimed shard: its id, the specs to run, their global spec
/// indices, and the trace content hashes those specs replay.
type ClaimedShard = (u64, Vec<RunSpec>, Vec<usize>, Vec<u64>);

/// What this endpoint knows about its worker, refreshed by every
/// connection's capability handshake. Before the first handshake the
/// endpoint is optimistically assumed trace-capable — the first trace
/// shard it claims settles the question.
#[derive(Debug, Default)]
struct Caps {
    /// A handshake has completed at least once.
    probed: bool,
    /// The worker advertised no trace store, or provisioning failed
    /// `endpoint_failure_limit` consecutive times.
    storeless_or_failed: bool,
    /// Trace hashes the worker held at the last handshake, plus those
    /// shipped since.
    held: HashSet<u64>,
    /// Consecutive trace-provisioning failures.
    trace_failures: u32,
    /// This endpoint already told the shared state it is not
    /// trace-capable.
    trace_retired: bool,
}

impl Caps {
    /// Whether this endpoint may take shards that need a trace shipment.
    fn trace_capable(&self) -> bool {
        !(self.trace_retired || (self.probed && self.storeless_or_failed))
    }
}

/// Which stage of a shard attempt failed — trace provisioning failures
/// degrade only the endpoint's trace capability; execution failures
/// count toward full endpoint retirement.
#[derive(Debug, Clone, Copy)]
enum Phase {
    Provision,
    Execute,
}

/// Trace-shipping work done during one shard attempt, folded into
/// [`DriverStats`] whether the attempt succeeds or fails (resumed bytes
/// stay resumed even if the shard later fails).
#[derive(Debug, Clone, Copy, Default)]
struct ShipReport {
    ships: u64,
    reuses: u64,
    resume_bytes: u64,
}

impl DriverStats {
    fn absorb(&mut self, r: &ShipReport) {
        self.trace_ships += r.ships;
        self.trace_reuses += r.reuses;
        self.trace_resume_bytes += r.resume_bytes;
    }
}

/// One failed shard attempt: the error, the phase it failed in, and the
/// shipping work that still counted.
#[derive(Debug)]
struct AttemptError {
    phase: Phase,
    err: WireError,
    report: ShipReport,
}

/// One shard: consecutive pending points of the spec sequence, plus the
/// trace content hashes its points replay (the placement key).
struct Shard {
    id: u64,
    indices: Vec<usize>,
    hashes: Vec<u64>,
}

struct ShardState {
    indices: Vec<usize>,
    /// Trace content hashes this shard's points need on the worker.
    hashes: Vec<u64>,
    /// Failed attempts so far.
    attempts: u32,
    /// Concurrent dispatches (2 while a speculative twin runs).
    in_flight: u32,
    /// When the latest dispatch started.
    started: Option<Instant>,
    /// This generation already has a speculative twin.
    speculated: bool,
    done: bool,
}

struct State {
    /// Shards awaiting (re-)dispatch, each with its earliest start time.
    queue: Vec<(Instant, u64)>,
    shards: HashMap<u64, ShardState>,
    outcomes: Vec<Option<PointOutcome>>,
    /// Shards not yet done.
    remaining: usize,
    active_endpoints: usize,
    /// Endpoints still believed able to take trace-bearing shards. At
    /// zero, pending trace shards degrade (synthetic shards continue).
    trace_capable_endpoints: usize,
    journal: Option<Journal>,
    stats: DriverStats,
}

impl State {
    fn complete(
        &mut self,
        shard_id: u64,
        indices: &[usize],
        results: Vec<PointOutcome>,
        specs: &[RunSpec],
    ) {
        let s = self.shards.get_mut(&shard_id).expect("completed shard exists");
        s.in_flight = s.in_flight.saturating_sub(1);
        if s.done {
            return; // the speculative twin already delivered
        }
        s.done = true;
        self.remaining -= 1;
        for (&gi, outcome) in indices.iter().zip(results) {
            if let Some(journal) = &mut self.journal {
                let io = match &outcome {
                    Ok(metrics) => {
                        journal.record_ok(gi, &render_entry(&specs[gi].cache_key(), metrics))
                    }
                    Err(e) => journal.record_failed(gi, e),
                };
                if let Err(e) = io {
                    eprintln!("warning: journal write failed: {e} (resume will re-run this point)");
                }
            }
            self.outcomes[gi] = Some(outcome);
        }
    }

    fn fail_attempt(
        &mut self,
        shard_id: u64,
        err: &WireError,
        specs: &[RunSpec],
        cfg: &DriverConfig,
    ) {
        self.stats.failed_attempts += 1;
        let s = self.shards.get_mut(&shard_id).expect("failed shard exists");
        s.in_flight = s.in_flight.saturating_sub(1);
        if s.done {
            return; // the twin already delivered
        }
        s.attempts += 1;
        if s.in_flight > 0 {
            return; // a twin is still running; it may yet deliver
        }
        let attempts = s.attempts;
        if attempts >= cfg.max_attempts {
            // Exhausted: the shard's points degrade into explicit errors.
            s.done = true;
            let indices = s.indices.clone();
            self.remaining -= 1;
            let message = format!(
                "shard {shard_id} exhausted {attempts} dispatch attempts; last error: {err}"
            );
            for gi in indices {
                self.outcomes[gi] = Some(Err(PointError {
                    cache_key: specs[gi].cache_key(),
                    message: message.clone(),
                }));
            }
        } else {
            s.speculated = false; // the retry may be speculated anew
            self.stats.retries += 1;
            let delay = backoff_delay(cfg, shard_id, attempts);
            self.queue.push((Instant::now() + delay, shard_id));
        }
    }

    /// An endpoint gave up entirely. If it was the last one, drain every
    /// unfinished shard into explicit point errors — with no workers
    /// left, waiting would hang the campaign forever.
    fn retire_endpoint(&mut self, specs: &[RunSpec], was_trace_capable: bool) {
        self.active_endpoints = self.active_endpoints.saturating_sub(1);
        if self.active_endpoints == 0 {
            self.degrade_pending(specs, |_| true, "no live worker endpoints remain");
            return;
        }
        if was_trace_capable {
            self.drop_trace_capability(specs);
        }
    }

    /// An endpoint lost its trace capability. When none remains, pending
    /// trace-bearing shards degrade while synthetic shards continue.
    fn drop_trace_capability(&mut self, specs: &[RunSpec]) {
        self.trace_capable_endpoints = self.trace_capable_endpoints.saturating_sub(1);
        if self.trace_capable_endpoints == 0 {
            self.degrade_pending(
                specs,
                |s| !s.hashes.is_empty(),
                "no trace-capable worker endpoints remain (trace provisioning failed \
                 on every endpoint)",
            );
        }
    }

    /// Degrades every unfinished shard matching `which` (skipping shards
    /// with a dispatch still in flight — their attempt may yet deliver;
    /// if it fails instead, `fail_attempt` retries or exhausts as usual).
    fn degrade_pending(
        &mut self,
        specs: &[RunSpec],
        which: impl Fn(&ShardState) -> bool,
        why: &str,
    ) {
        if self.remaining == 0 {
            return;
        }
        let doomed: Vec<u64> = self
            .shards
            .iter()
            .filter(|(_, s)| !s.done && s.in_flight == 0 && which(s))
            .map(|(&id, _)| id)
            .collect();
        for id in doomed {
            let s = self.shards.get_mut(&id).expect("shard exists");
            s.done = true;
            let indices = s.indices.clone();
            self.remaining -= 1;
            self.queue.retain(|&(_, qid)| qid != id);
            for gi in indices {
                self.outcomes[gi] = Some(Err(PointError {
                    cache_key: specs[gi].cache_key(),
                    message: why.to_string(),
                }));
            }
        }
    }
}

/// Deterministic backoff: exponential in the attempt number, capped,
/// scaled by a jitter factor in `[0.5, 1.0)` seeded from
/// `(backoff_seed, shard, attempt)` — the schedule is a pure function of
/// the configuration, never of wall-clock or thread timing.
fn backoff_delay(cfg: &DriverConfig, shard: u64, attempt: u32) -> Duration {
    let exp = cfg
        .backoff_base
        .saturating_mul(1u32 << (attempt - 1).min(16))
        .min(cfg.backoff_cap);
    let mut rng = SimRng::new(
        cfg.backoff_seed
            ^ shard.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ u64::from(attempt),
    );
    exp.mul_f64(0.5 + 0.5 * rng.next_f64())
}

fn check_point(expected: u64, shard: u64, index: u32, len: usize) -> Result<usize, WireError> {
    if shard != expected {
        return Err(WireError::Malformed(format!(
            "result for shard {shard}, expected {expected}"
        )));
    }
    let i = index as usize;
    if i >= len {
        return Err(WireError::Malformed(format!(
            "point index {index} out of range (shard has {len} points)"
        )));
    }
    Ok(i)
}

/// Spawns a worker process with `--listen 127.0.0.1:0` and reads its
/// `listening <addr>` banner. Every failure is a typed [`DriverError`]
/// naming the binary and carrying the worker's captured stderr — never a
/// panic, so a bad `--worker-bin` degrades points instead of aborting
/// the campaign.
fn spawn_worker(
    program: &std::path::Path,
    args: &[String],
) -> Result<(String, Child), DriverError> {
    let mut child = Command::new(program)
        .args(args)
        .args(["--listen", "127.0.0.1:0"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .map_err(|error| DriverError::WorkerSpawn { program: program.to_path_buf(), error })?;
    let Some(stdout) = child.stdout.take() else {
        let _ = child.kill();
        let _ = child.wait();
        return Err(DriverError::WorkerBanner {
            program: program.to_path_buf(),
            banner: "<stdout pipe missing>".into(),
            stderr: String::new(),
        });
    };
    let mut line = String::new();
    let read = std::io::BufReader::new(stdout).read_line(&mut line);
    let banner_fail = |child: &mut Child, banner: String| {
        let _ = child.kill();
        let mut stderr = String::new();
        if let Some(mut pipe) = child.stderr.take() {
            let _ = pipe.read_to_string(&mut stderr);
        }
        let _ = child.wait();
        DriverError::WorkerBanner { program: program.to_path_buf(), banner, stderr }
    };
    if let Err(e) = read {
        return Err(banner_fail(&mut child, format!("<banner read failed: {e}>")));
    }
    match line.trim().strip_prefix("listening ") {
        Some(addr) if !addr.is_empty() => {
            // Keep the worker's diagnostics flowing to our stderr for the
            // rest of its life.
            if let Some(pipe) = child.stderr.take() {
                std::thread::spawn(move || {
                    let mut pipe = pipe;
                    let _ = std::io::copy(&mut pipe, &mut std::io::stderr());
                });
            }
            Ok((addr.to_string(), child))
        }
        _ => Err(banner_fail(&mut child, line.trim().to_string())),
    }
}
