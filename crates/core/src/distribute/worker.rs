//! The shard worker: serves [`wire`](super::wire) shard requests on a
//! local [`BatchRunner`], streaming back bit-exact metric records.
//!
//! A worker is deliberately stateless between shards: it receives a
//! [`Message::ShardRequest`], executes each spec through the same
//! panic-isolating path as local batches
//! ([`BatchRunner::run_batch_outcomes`]), and answers with one
//! [`Message::PointOk`]/[`Message::PointFailed`] per spec followed by a
//! [`Message::ShardDone`] trailer whose count lets the driver detect a
//! short stream. While a point simulates, a heartbeat thread keeps the
//! connection audibly alive ([`Message::Heartbeat`] every
//! [`Worker::with_heartbeat`] interval), so the driver can distinguish
//! "slow point" from "dead worker" with a single read timeout.
//!
//! The one piece of durable state is the optional [`TraceStore`]
//! (`--trace-store DIR`): a connection opens with the
//! [`Message::Hello`]/[`Message::HelloAck`] capability handshake, where
//! the worker advertises its core count, whether it has a store, and the
//! trace content hashes the store holds. A driver ships missing traces
//! as [`Message::TraceOffer`] + [`Message::TraceChunk`] frames before
//! dispatching trace-bearing shards; the store appends chunks
//! crash-safely and re-verifies the assembled archive against the
//! content hash before installing (`super::store`). Shard requests then
//! resolve `trace@<contenthash>` specs against the store.
//!
//! ## Deterministic fault injection
//!
//! A [`FaultPlan`] makes the worker misbehave on purpose — drop the
//! connection after N result frames (simulating a mid-shard crash),
//! drop it after receiving N trace chunks *without* dying (simulating a
//! crash-and-restart mid-transfer, the staged partial retained), delay
//! every result frame (a straggler), corrupt one frame's payload
//! *after* its digest is computed (undetectable except by the digest),
//! or panic while executing the K-th point. Counters are process-wide,
//! so a plan describes one deterministic failure story regardless of how
//! the driver shards or retries. The chaos CI gates and the
//! fault-injection integration tests drive everything through these
//! flags; nothing here fires unless a plan is set.

use super::store::TraceStore;
use super::wire::{read_frame_with, write_frame, Message, WireError, VERSION};
use crate::cache::render_entry;
use crate::runner::{panic_message, BatchRunner, PointError, RunSpec};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpListener;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Deterministic worker misbehaviour, for tests and the chaos CI gates.
/// All counters refer to process-wide result-frame / point / chunk
/// indices (heartbeats are not counted — their cadence is
/// timing-dependent).
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultPlan {
    /// Drop the connection (and stop serving — a simulated crash) instead
    /// of sending the N-th result frame (0-based).
    pub drop_after_frames: Option<u64>,
    /// Drop the connection after *receiving* (and durably staging) the
    /// N-th trace chunk (1-based: `Some(2)` keeps two chunks). Unlike
    /// `drop_after_frames` the worker keeps serving — it models a worker
    /// that crashed mid-transfer and restarted, so the next offer must
    /// resume from the staged partial.
    pub drop_after_chunks: Option<u64>,
    /// Sleep this long before every result frame (a straggler worker).
    pub delay: Option<Duration>,
    /// Flip one payload byte of the N-th result frame after its digest
    /// is computed — on the wire it is a corrupt frame.
    pub corrupt_frame: Option<u64>,
    /// Panic while executing the K-th point (exercises the worker-side
    /// panic isolation path end to end).
    pub panic_on_point: Option<u64>,
}

impl FaultPlan {
    /// Whether any fault is armed.
    pub fn is_armed(&self) -> bool {
        self.drop_after_frames.is_some()
            || self.drop_after_chunks.is_some()
            || self.delay.is_some()
            || self.corrupt_frame.is_some()
            || self.panic_on_point.is_some()
    }
}

/// A shard worker: a [`BatchRunner`] (plus an optional [`TraceStore`])
/// behind the wire protocol.
#[derive(Debug)]
pub struct Worker {
    runner: BatchRunner,
    store: Option<TraceStore>,
    heartbeat: Duration,
    fault: FaultPlan,
    /// Result frames sent, process-wide (drives `drop_after_frames` /
    /// `corrupt_frame`).
    frames: AtomicU64,
    /// Points executed, process-wide (drives `panic_on_point`).
    points: AtomicU64,
    /// Trace chunks received, process-wide (drives `drop_after_chunks`).
    chunks: AtomicU64,
    /// The drop fault fired: stop serving (the simulated crash).
    dead: AtomicBool,
}

impl Worker {
    /// A worker executing shards on `runner`, heartbeating every 200 ms,
    /// with no trace store (synthetic/open-loop points, plus `trace:PATH`
    /// specs on a shared filesystem).
    pub fn new(runner: BatchRunner) -> Self {
        Worker {
            runner,
            store: None,
            heartbeat: Duration::from_millis(200),
            fault: FaultPlan::default(),
            frames: AtomicU64::new(0),
            points: AtomicU64::new(0),
            chunks: AtomicU64::new(0),
            dead: AtomicBool::new(false),
        }
    }

    /// Attaches a content-addressed trace store: the worker advertises
    /// its held hashes in the handshake, accepts trace shipments, and
    /// resolves `trace@<contenthash>` specs against it.
    pub fn with_trace_store(mut self, store: TraceStore) -> Self {
        self.store = Some(store);
        self
    }

    /// Sets the heartbeat interval. Keep it a small fraction of the
    /// driver's read timeout.
    pub fn with_heartbeat(mut self, interval: Duration) -> Self {
        self.heartbeat = interval;
        self
    }

    /// Arms a deterministic fault plan.
    pub fn with_faults(mut self, fault: FaultPlan) -> Self {
        self.fault = fault;
        self
    }

    /// Whether the drop fault has fired (the worker considers itself
    /// crashed and will serve no further connections).
    pub fn is_dead(&self) -> bool {
        self.dead.load(Ordering::SeqCst)
    }

    /// Serves connections on `listener` until the drop fault fires.
    /// Connections are handled one at a time (a worker owns its whole
    /// pool); per-connection protocol errors are reported on stderr and
    /// do not stop the worker.
    ///
    /// # Errors
    ///
    /// Only accept-level I/O errors; a misbehaving *client* never stops
    /// the worker.
    pub fn serve_listener(&self, listener: &TcpListener) -> std::io::Result<()> {
        for conn in listener.incoming() {
            if self.is_dead() {
                break;
            }
            let stream = conn?;
            let reader = stream.try_clone()?;
            if let Err(e) = self.serve_stream(reader, &stream) {
                if !matches!(e, WireError::Closed) {
                    eprintln!("nocout-worker: connection ended: {e}");
                }
            }
            if self.is_dead() {
                break;
            }
        }
        Ok(())
    }

    /// Serves one peer over stdin/stdout — the pipe transport for local
    /// process pools that never open a socket.
    ///
    /// # Errors
    ///
    /// The first protocol error on the pipe (there is no next connection
    /// to fall back to).
    pub fn serve_stdio(&self) -> Result<(), WireError> {
        self.serve_stream(std::io::stdin().lock(), std::io::stdout())
    }

    /// Serves one peer: handshake, trace shipments and shard requests
    /// in, capability/transfer acks and result frames out, until the
    /// peer closes or a fault fires.
    ///
    /// # Errors
    ///
    /// Any [`WireError`] from the transport or a malformed request — in
    /// particular [`WireError::VersionMismatch`] (naming both versions)
    /// when the peer's frames declare a different protocol version.
    pub fn serve_stream<R: Read, W: Write + Send>(
        &self,
        mut reader: R,
        writer: W,
    ) -> Result<(), WireError> {
        let writer = Mutex::new(writer);
        // Archive totals from offers on *this* connection, so a chunk
        // completing a transfer knows when to commit.
        let mut offers: HashMap<u64, u64> = HashMap::new();
        loop {
            let msg = match read_frame_with(
                &mut reader,
                self.store.as_ref().map(|s| s as &dyn super::wire::TraceLookup),
            ) {
                Ok(m) => m,
                Err(WireError::Closed) => return Ok(()),
                Err(e) => return Err(e),
            };
            match msg {
                Message::Hello { version: _ } => {
                    // Frame decoding already enforced version equality;
                    // the ack advertises this worker's capabilities.
                    let (store, trace_hashes) = match &self.store {
                        Some(s) => (true, s.held()),
                        None => (false, Vec::new()),
                    };
                    self.send_raw(
                        &writer,
                        &Message::HelloAck {
                            version: VERSION,
                            cores: self.runner.jobs() as u32,
                            store,
                            trace_hashes,
                        },
                    )?;
                }
                Message::TraceOffer { hash, total_len } => {
                    let store = self.store.as_ref().ok_or_else(|| {
                        WireError::Malformed(
                            "trace offered to a worker without a --trace-store".into(),
                        )
                    })?;
                    offers.insert(hash, total_len);
                    // A verified installed entry answers with the full
                    // length (nothing to ship); otherwise the staged
                    // partial length is the resume point.
                    let have = if store.get(hash).is_some() {
                        total_len
                    } else {
                        store.staged_len(hash)
                    };
                    self.send_raw(&writer, &Message::TraceAck { hash, have })?;
                }
                Message::TraceChunk { hash, offset, data } => {
                    let store = self.store.as_ref().ok_or_else(|| {
                        WireError::Malformed(
                            "trace chunk sent to a worker without a --trace-store".into(),
                        )
                    })?;
                    let staged = store
                        .append_chunk(hash, offset, &data)
                        .map_err(WireError::Io)?;
                    let chunk_no = self.chunks.fetch_add(1, Ordering::SeqCst) + 1;
                    if self.fault.drop_after_chunks == Some(chunk_no) {
                        // Crash-and-restart mid-transfer: the chunk above
                        // is durably staged, the connection dies, the
                        // worker lives to resume on the next offer.
                        return Err(WireError::Io(std::io::Error::other(
                            "injected fault: connection dropped after trace chunk",
                        )));
                    }
                    let total = offers.get(&hash).copied().ok_or_else(|| {
                        WireError::Malformed(format!(
                            "trace chunk for {hash:016x} without a preceding offer"
                        ))
                    })?;
                    if staged >= total {
                        let installed =
                            store.commit(hash, total).map_err(WireError::Io)?;
                        debug_assert_eq!(installed.content_hash(), hash);
                        self.send_raw(&writer, &Message::TraceAck { hash, have: total })?;
                    }
                }
                Message::ShardRequest { shard, specs } => {
                    self.run_shard(shard, &specs, &writer)?;
                    if self.is_dead() {
                        return Ok(());
                    }
                }
                Message::Heartbeat => {}
                other => {
                    return Err(WireError::Malformed(format!(
                        "worker received a {other:?} frame (only handshakes, trace \
                         shipments and shard requests flow this way)"
                    )))
                }
            }
        }
    }

    /// Executes one shard, streaming results as they complete. Points run
    /// one at a time through the runner (its cache still memoizes each),
    /// so results stream out between points and a heartbeat thread covers
    /// the silence *within* a long point.
    fn run_shard<W: Write + Send>(
        &self,
        shard: u64,
        specs: &[RunSpec],
        writer: &Mutex<W>,
    ) -> Result<(), WireError> {
        let stop = AtomicBool::new(false);
        // Copied out so the heartbeat thread does not capture `self`
        // (the runner's cache counters are deliberately not `Sync`).
        let heartbeat = self.heartbeat;
        std::thread::scope(|scope| {
            let stop = &stop;
            scope.spawn(move || {
                // Heartbeat ticker: wakes often enough to stop promptly,
                // writes at the configured cadence. Write errors are left
                // for the result path to surface.
                let tick = Duration::from_millis(20).min(heartbeat);
                let mut since_beat = Duration::ZERO;
                while !stop.load(Ordering::SeqCst) {
                    std::thread::sleep(tick);
                    since_beat += tick;
                    if since_beat >= heartbeat {
                        since_beat = Duration::ZERO;
                        if let Ok(mut w) = writer.lock() {
                            let _ = write_frame(&mut *w, &Message::Heartbeat);
                        }
                    }
                }
            });
            let result = self.run_shard_inner(shard, specs, writer);
            stop.store(true, Ordering::SeqCst);
            result
        })
    }

    fn run_shard_inner<W: Write + Send>(
        &self,
        shard: u64,
        specs: &[RunSpec],
        writer: &Mutex<W>,
    ) -> Result<(), WireError> {
        let mut sent = 0u32;
        for (index, spec) in specs.iter().enumerate() {
            let point_no = self.points.fetch_add(1, Ordering::SeqCst);
            let outcome = if self.fault.panic_on_point == Some(point_no) {
                // A real unwind through the isolation path, not a
                // synthesized error: the fault proves the machinery.
                catch_unwind(AssertUnwindSafe(|| {
                    panic!("injected fault: panic on point {point_no}")
                }))
                .map_err(|p| PointError {
                    cache_key: spec.cache_key(),
                    message: panic_message(p),
                })
            } else {
                self.runner
                    .run_batch_outcomes(std::slice::from_ref(spec))
                    .pop()
                    .expect("one spec yields one outcome")
            };
            let msg = match outcome {
                Ok(metrics) => Message::PointOk {
                    shard,
                    index: index as u32,
                    entry: render_entry(&spec.cache_key(), &metrics),
                },
                Err(e) => Message::PointFailed {
                    shard,
                    index: index as u32,
                    error: e.message,
                },
            };
            self.send_result(writer, &msg)?;
            sent += 1;
        }
        self.send_result(writer, &Message::ShardDone { shard, points: sent })
    }

    /// Sends a protocol frame that is *not* a result frame (handshake
    /// and transfer acks): no fault counters apply.
    fn send_raw<W: Write + Send>(
        &self,
        writer: &Mutex<W>,
        msg: &Message,
    ) -> Result<(), WireError> {
        let mut w = writer.lock().map_err(|_| {
            WireError::Io(std::io::Error::other("writer lock poisoned"))
        })?;
        write_frame(&mut *w, msg)
    }

    /// Sends one result frame, applying the armed faults in order:
    /// delay, then drop, then corruption.
    fn send_result<W: Write + Send>(
        &self,
        writer: &Mutex<W>,
        msg: &Message,
    ) -> Result<(), WireError> {
        if let Some(d) = self.fault.delay {
            std::thread::sleep(d);
        }
        let frame_no = self.frames.fetch_add(1, Ordering::SeqCst);
        if self.fault.drop_after_frames == Some(frame_no) {
            self.dead.store(true, Ordering::SeqCst);
            return Err(WireError::Io(std::io::Error::other(
                "injected fault: connection dropped",
            )));
        }
        let mut frame = super::wire::encode_frame(msg)?;
        if self.fault.corrupt_frame == Some(frame_no) {
            let last = frame.len() - 1;
            frame[last] ^= 0x01;
        }
        let mut w = writer.lock().map_err(|_| {
            WireError::Io(std::io::Error::other("writer lock poisoned"))
        })?;
        w.write_all(&frame)?;
        w.flush()?;
        Ok(())
    }
}
