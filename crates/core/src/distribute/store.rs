//! The worker-side content-addressed trace store, and the archive
//! format traces ship in.
//!
//! A [`TraceStore`] maps a trace content hash
//! (`TraceSet::content_hash`: FNV-1a 64 over each stream file's name and
//! bytes, in file-name order) to an installed trace directory:
//!
//! ```text
//! <store>/<hash:016x>/           an installed, verified trace directory
//! <store>/<hash:016x>.partial    a resumable in-flight archive transfer
//! <store>/<hash:016x>.bad        a quarantined corrupt entry
//! ```
//!
//! The store makes the same promises the results cache does, because it
//! faces the same failure modes:
//!
//! * **Atomic install** — an arriving archive unpacks into a temp
//!   directory, is loaded and re-verified against its content hash, and
//!   only then renamed into place. A crash mid-install leaves at most a
//!   temp directory and the partial file, never a half-written entry.
//! * **Verify on load** — [`TraceStore::get`] re-derives the content
//!   hash from the bytes on disk (`TraceSet::load` re-reads and
//!   re-hashes every stream); an entry whose bytes no longer match its
//!   name is quarantined to `<entry>.bad` — exactly like
//!   `crate::cache::ResultsCache` — and reported as a miss, so the
//!   driver re-ships instead of replaying corrupt streams.
//! * **Resumable transfer** — chunks append to `<hash>.partial` with a
//!   per-chunk fsync; a worker crash mid-transfer loses nothing already
//!   appended, and the next offer resumes from the staged length.
//!
//! ## The archive format
//!
//! A trace ships as one byte stream framing its files in file-name
//! order — the same order the content hash folds them in:
//!
//! ```text
//! nocout-trace-archive v1 files <n>\n
//! file <name> <len>\n<len raw bytes>      (n times)
//! ```
//!
//! Unpacking therefore reproduces a directory whose `TraceSet::load`
//! content hash equals the shipped hash exactly when every byte arrived
//! intact — the end-to-end check no per-frame digest can replace.

use super::wire::TraceLookup;
use nocout_workloads::trace::TraceSet;
use std::io::{self, Seek, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const ARCHIVE_MAGIC: &str = "nocout-trace-archive v1";

/// Serializes a trace as one shippable archive: every stream file in
/// file-name order, names and bytes verbatim.
///
/// # Errors
///
/// I/O errors reading the stream files, or a stream file whose name is
/// not representable (contains a newline).
pub fn archive_trace(set: &TraceSet) -> io::Result<Vec<u8>> {
    let mut out = format!("{ARCHIVE_MAGIC} files {}\n", set.files().len()).into_bytes();
    for path in set.files() {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("trace stream {} has a non-UTF-8 name", path.display()),
                )
            })?;
        if name.contains('\n') || name.contains('/') {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("trace stream name `{name}` cannot be archived"),
            ));
        }
        let bytes = std::fs::read(path)?;
        out.extend_from_slice(format!("file {name} {}\n", bytes.len()).as_bytes());
        out.extend_from_slice(&bytes);
    }
    Ok(out)
}

/// Unpacks an [`archive_trace`] byte stream into `dest` (which must not
/// exist yet; it is created).
///
/// # Errors
///
/// A malformed archive (bad magic, counts or lengths that disagree with
/// the bytes) or any I/O error writing the files.
fn unpack_archive(bytes: &[u8], dest: &Path) -> io::Result<()> {
    fn bad(msg: impl Into<String>) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, msg.into())
    }
    fn take_line<'a>(bytes: &mut &'a [u8]) -> io::Result<&'a str> {
        let nl = bytes
            .iter()
            .position(|&b| b == b'\n')
            .ok_or_else(|| bad("archive truncated inside a header line"))?;
        let line = std::str::from_utf8(&bytes[..nl])
            .map_err(|_| bad("archive header line is not UTF-8"))?;
        *bytes = &bytes[nl + 1..];
        Ok(line)
    }
    let mut rest = bytes;
    let head = take_line(&mut rest)?;
    let count: usize = head
        .strip_prefix(ARCHIVE_MAGIC)
        .and_then(|t| t.strip_prefix(" files "))
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| bad(format!("bad archive header `{head}`")))?;
    std::fs::create_dir_all(dest)?;
    for _ in 0..count {
        let head = take_line(&mut rest)?;
        let (name, len) = head
            .strip_prefix("file ")
            .and_then(|t| t.rsplit_once(' '))
            .and_then(|(name, len)| Some((name, len.parse::<usize>().ok()?)))
            .ok_or_else(|| bad(format!("bad archive file header `{head}`")))?;
        if name.is_empty() || name.contains('/') || name.contains("..") {
            return Err(bad(format!("unsafe archive file name `{name}`")));
        }
        if rest.len() < len {
            return Err(bad(format!(
                "archive truncated: file `{name}` declares {len} bytes, {} remain",
                rest.len()
            )));
        }
        std::fs::write(dest.join(name), &rest[..len])?;
        rest = &rest[len..];
    }
    if !rest.is_empty() {
        return Err(bad(format!("{} trailing bytes after the archive", rest.len())));
    }
    Ok(())
}

/// A crash-safe, content-addressed trace store (the worker side of
/// trace shipping). See the module docs for the on-disk layout and the
/// install/verify/quarantine invariants.
#[derive(Debug)]
pub struct TraceStore {
    dir: PathBuf,
    quarantined: AtomicU64,
}

impl TraceStore {
    /// Opens (creating if needed) a store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// I/O errors creating the directory.
    pub fn open<P: Into<PathBuf>>(dir: P) -> io::Result<TraceStore> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(TraceStore { dir, quarantined: AtomicU64::new(0) })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Entries quarantined to `<entry>.bad` since the store opened.
    pub fn quarantined(&self) -> u64 {
        self.quarantined.load(Ordering::Relaxed)
    }

    fn entry_dir(&self, hash: u64) -> PathBuf {
        self.dir.join(format!("{hash:016x}"))
    }

    fn partial_path(&self, hash: u64) -> PathBuf {
        self.dir.join(format!("{hash:016x}.partial"))
    }

    /// The content hashes this store holds entries for. A cheap
    /// directory scan — entries are *not* verified here (the capability
    /// handshake must stay fast); verification happens on
    /// [`TraceStore::get`], where a corrupt entry is quarantined and the
    /// next handshake stops advertising it.
    pub fn held(&self) -> Vec<u64> {
        let Ok(read) = std::fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        let mut hashes: Vec<u64> = read
            .flatten()
            .filter(|e| e.path().is_dir())
            .filter_map(|e| {
                let name = e.file_name();
                let name = name.to_str()?;
                if name.len() == 16 {
                    u64::from_str_radix(name, 16).ok()
                } else {
                    None
                }
            })
            .collect();
        hashes.sort_unstable();
        hashes
    }

    /// Loads the entry for `hash`, re-verifying the content hash from
    /// the bytes on disk. A missing entry is `None`; an entry that fails
    /// to load or whose re-derived hash disagrees is quarantined to
    /// `<entry>.bad` (preserving the bytes for inspection) and also
    /// reported as `None`, so the caller's next move — re-ship — is the
    /// same either way.
    pub fn get(&self, hash: u64) -> Option<Arc<TraceSet>> {
        let path = self.entry_dir(hash);
        if !path.is_dir() {
            return None;
        }
        match TraceSet::load(&path) {
            Ok(set) if set.content_hash() == hash => Some(set),
            _ => {
                self.quarantine(&path);
                None
            }
        }
    }

    fn quarantine(&self, path: &Path) {
        let bad = path.with_extension("bad");
        let _ = std::fs::remove_dir_all(&bad); // a previous quarantine
        if std::fs::rename(path, &bad).is_ok() {
            self.quarantined.fetch_add(1, Ordering::Relaxed);
            eprintln!(
                "warning: trace store entry {} failed verification; quarantined to {}",
                path.display(),
                bad.display()
            );
        }
    }

    /// Bytes staged for `hash` so far: the full archive length if the
    /// entry is installed, else the partial file's length (the resume
    /// point after a crash), else zero.
    pub fn staged_len(&self, hash: u64) -> u64 {
        std::fs::metadata(self.partial_path(hash))
            .map(|m| m.len())
            .unwrap_or(0)
    }

    /// Appends one archive chunk at `offset` to the partial file,
    /// fsyncing so a crash after this call never loses the chunk.
    ///
    /// # Errors
    ///
    /// An offset that is not exactly the staged length (chunks must
    /// arrive in order; the driver resumes from the acked length), or
    /// any I/O error.
    pub fn append_chunk(&self, hash: u64, offset: u64, data: &[u8]) -> io::Result<u64> {
        let path = self.partial_path(hash);
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)?;
        let staged = file.seek(io::SeekFrom::End(0))?;
        if offset != staged {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("chunk offset {offset} does not match staged length {staged}"),
            ));
        }
        file.write_all(data)?;
        file.sync_data()?;
        Ok(staged + data.len() as u64)
    }

    /// Completes a transfer: checks the staged length against the
    /// offered total, unpacks the archive into a temp directory, loads
    /// it and re-verifies the content hash, then renames it into place
    /// atomically and removes the partial. On any failure the partial is
    /// discarded so the next offer re-ships from zero rather than
    /// resuming onto corrupt bytes.
    ///
    /// # Errors
    ///
    /// A short or corrupt archive (including a content-hash mismatch —
    /// the assembled bytes are not the trace the offer named), or I/O.
    pub fn commit(&self, hash: u64, total_len: u64) -> io::Result<Arc<TraceSet>> {
        let partial = self.partial_path(hash);
        let result = self.commit_inner(hash, total_len, &partial);
        if result.is_err() {
            let _ = std::fs::remove_file(&partial);
        }
        result
    }

    fn commit_inner(
        &self,
        hash: u64,
        total_len: u64,
        partial: &Path,
    ) -> io::Result<Arc<TraceSet>> {
        let bytes = std::fs::read(partial)?;
        if bytes.len() as u64 != total_len {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "staged {} bytes but the offer declared {total_len}",
                    bytes.len()
                ),
            ));
        }
        let tmp = self
            .dir
            .join(format!("{hash:016x}.tmp.{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&tmp);
        let installed = (|| {
            unpack_archive(&bytes, &tmp)?;
            let set = TraceSet::load(&tmp)?;
            if set.content_hash() != hash {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "assembled archive hashes to {:016x}, offer named {hash:016x}",
                        set.content_hash()
                    ),
                ));
            }
            let dest = self.entry_dir(hash);
            let _ = std::fs::remove_dir_all(&dest); // a quarantine raced us back
            std::fs::rename(&tmp, &dest)?;
            // Reload from the final path so the TraceSet's dir (and the
            // open_stream paths) point at the installed entry.
            TraceSet::load(&dest)
        })();
        if installed.is_err() {
            let _ = std::fs::remove_dir_all(&tmp);
        }
        let _ = std::fs::remove_file(partial);
        installed
    }
}

impl TraceLookup for TraceStore {
    fn lookup(&self, hash: u64) -> Option<Arc<TraceSet>> {
        self.get(hash)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ChipConfig, Organization};
    use nocout_workloads::Workload;

    fn tmp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("nocout-store-{tag}-{}", std::process::id()))
    }

    fn capture(tag: &str) -> (PathBuf, Arc<TraceSet>) {
        let dir = tmp(&format!("cap-{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let chip = ChipConfig::paper(Organization::Mesh);
        let set = crate::chip::capture_synthetic_trace(chip, Workload::WebSearch, 1, &dir, 2_000)
            .expect("capture trace");
        (dir, set)
    }

    #[test]
    fn archive_install_round_trip_preserves_the_content_hash() {
        let (cap, set) = capture("roundtrip");
        let store_dir = tmp("store-roundtrip");
        let _ = std::fs::remove_dir_all(&store_dir);
        let store = TraceStore::open(&store_dir).unwrap();
        let hash = set.content_hash();
        assert!(store.get(hash).is_none());
        assert_eq!(store.staged_len(hash), 0);

        let archive = archive_trace(&set).unwrap();
        // Ship in two chunks through the crash-safe path.
        let mid = archive.len() / 2;
        store.append_chunk(hash, 0, &archive[..mid]).unwrap();
        assert_eq!(store.staged_len(hash), mid as u64);
        store.append_chunk(hash, mid as u64, &archive[mid..]).unwrap();
        let installed = store.commit(hash, archive.len() as u64).unwrap();
        assert_eq!(installed.content_hash(), hash);
        assert_eq!(store.held(), vec![hash]);
        assert_eq!(store.staged_len(hash), 0, "partial removed after install");
        let loaded = store.get(hash).expect("installed entry loads");
        assert_eq!(loaded.content_hash(), hash);
        let _ = std::fs::remove_dir_all(&cap);
        let _ = std::fs::remove_dir_all(&store_dir);
    }

    #[test]
    fn out_of_order_chunk_is_rejected() {
        let store_dir = tmp("store-order");
        let _ = std::fs::remove_dir_all(&store_dir);
        let store = TraceStore::open(&store_dir).unwrap();
        store.append_chunk(7, 0, b"abc").unwrap();
        let err = store.append_chunk(7, 9, b"def").unwrap_err();
        assert!(err.to_string().contains("does not match staged length"), "{err}");
        let _ = std::fs::remove_dir_all(&store_dir);
    }

    #[test]
    fn corrupt_entry_is_quarantined_and_reported_missing() {
        let (cap, set) = capture("quarantine");
        let store_dir = tmp("store-quarantine");
        let _ = std::fs::remove_dir_all(&store_dir);
        let store = TraceStore::open(&store_dir).unwrap();
        let hash = set.content_hash();
        let archive = archive_trace(&set).unwrap();
        store.append_chunk(hash, 0, &archive).unwrap();
        store.commit(hash, archive.len() as u64).unwrap();

        // Flip one byte of one installed stream: held() still advertises
        // the entry (no verification on scan), but get() must detect the
        // mismatch, quarantine, and miss.
        let entry = store_dir.join(format!("{hash:016x}"));
        let stream = std::fs::read_dir(&entry).unwrap().next().unwrap().unwrap().path();
        let mut bytes = std::fs::read(&stream).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&stream, &bytes).unwrap();
        assert_eq!(store.held(), vec![hash]);
        assert!(store.get(hash).is_none());
        assert_eq!(store.quarantined(), 1);
        assert!(entry.with_extension("bad").is_dir(), "bytes preserved for inspection");
        assert!(store.held().is_empty(), "quarantined entries are no longer advertised");
        let _ = std::fs::remove_dir_all(&cap);
        let _ = std::fs::remove_dir_all(&store_dir);
    }

    #[test]
    fn commit_of_a_wrong_hash_fails_and_discards_the_partial() {
        let (cap, set) = capture("wronghash");
        let store_dir = tmp("store-wronghash");
        let _ = std::fs::remove_dir_all(&store_dir);
        let store = TraceStore::open(&store_dir).unwrap();
        let archive = archive_trace(&set).unwrap();
        let wrong = set.content_hash() ^ 1;
        store.append_chunk(wrong, 0, &archive).unwrap();
        let err = store.commit(wrong, archive.len() as u64).unwrap_err();
        assert!(err.to_string().contains("hashes to"), "{err}");
        assert_eq!(store.staged_len(wrong), 0, "failed commit discards the partial");
        assert!(store.held().is_empty());
        let _ = std::fs::remove_dir_all(&cap);
        let _ = std::fs::remove_dir_all(&store_dir);
    }

    #[test]
    fn unsafe_archive_names_are_rejected() {
        let dest = tmp("unpack-unsafe");
        let _ = std::fs::remove_dir_all(&dest);
        let archive = b"nocout-trace-archive v1 files 1\nfile ../evil 1\nx";
        let err = unpack_archive(archive, &dest).unwrap_err();
        assert!(err.to_string().contains("unsafe"), "{err}");
        let _ = std::fs::remove_dir_all(&dest);
    }
}
