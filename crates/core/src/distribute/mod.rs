//! Fault-tolerant sharded campaign execution.
//!
//! A campaign's spec sequence is a pure plan — every point a pure
//! function of its [`crate::runner::RunSpec`] — so it can execute
//! anywhere that has the same simulator build and (for trace workloads)
//! the same trace store. This module splits execution into:
//!
//! * [`wire`] — the length-prefixed, versioned, digest-verified frame
//!   protocol shard requests and bit-exact metric records travel over,
//! * [`worker`] — the serving side: a [`crate::runner::BatchRunner`]
//!   behind the protocol, with heartbeats and deterministic fault
//!   injection ([`FaultPlan`]) for tests and the chaos CI gate,
//! * [`driver`] — the dispatching side: shard partitioning,
//!   retry/backoff, straggler speculation, endpoint retirement, and
//!   per-point degradation into [`crate::runner::PointError`]s,
//! * [`store`] — the content-addressed worker trace store and the
//!   archive format traces ship in: traces are identified by content
//!   hash on the wire (`trace@<hash>`), shipped in digest-verified
//!   chunks, staged crash-safely, and re-verified against their hash
//!   before use,
//! * [`journal`] — the crash-safe manifest that makes a driver run
//!   resumable after a crash.
//!
//! The invariant everything here preserves: **merged sharded results
//! are byte-identical to a local [`crate::runner::BatchRunner`] run.**
//! Successful metrics travel as the results cache's bit-exact entry
//! text and are verified against each point's canonical key on receipt,
//! so distribution can change where and when points run — never what
//! they compute. `docs/distributed-campaigns.md` walks through the
//! protocol, the failure taxonomy, and the resume semantics.

pub mod driver;
pub mod journal;
pub mod store;
pub mod wire;
pub mod worker;

pub use driver::{DriverConfig, DriverError, DriverStats, Endpoint, ShardedDriver};
pub use journal::{campaign_fingerprint, Journal, JournalRecord};
pub use store::{archive_trace, TraceStore};
pub use wire::{
    decode_frame, decode_frame_with, encode_frame, parse_spec, parse_spec_with, read_frame,
    read_frame_with, render_spec, write_frame, Message, TraceLookup, WireError, HEADER_LEN, MAGIC,
    MAX_PAYLOAD, VERSION,
};
pub use worker::{FaultPlan, Worker};
