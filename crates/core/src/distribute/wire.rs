//! The shard wire protocol: length-prefixed, versioned, hash-verified
//! frames carrying shard requests, trace shipments, and bit-exact metric
//! records.
//!
//! ## Frame layout
//!
//! Every message travels as one frame:
//!
//! ```text
//! magic   4 bytes  b"NCWP"
//! version 2 bytes  little-endian u16, currently 2
//! kind    1 byte   message discriminant
//! flags   1 byte   must be zero (reserved)
//! length  4 bytes  little-endian u32 payload length, <= MAX_PAYLOAD
//! digest  8 bytes  little-endian FNV-1a 64 of the payload bytes
//! payload length bytes
//! ```
//!
//! The digest makes *every* payload corruption detectable — without it a
//! flipped digit inside a metrics record would decode into a plausible
//! but wrong value, the one failure mode a distributed campaign must
//! never let through silently. The length bound rejects absurd frames
//! before allocating. Decoding never panics and never reads past the
//! declared frame: truncated, oversized, wrong-magic, wrong-version and
//! corrupt inputs all map to a typed [`WireError`]
//! (`tests/distribute_wire.rs` pins this property over random mutations).
//!
//! ## Version 2: the capability handshake and trace shipping
//!
//! A connection opens with [`Message::Hello`] (driver → worker) answered
//! by [`Message::HelloAck`] (worker → driver) carrying the worker's
//! protocol version, core count, whether it has a `--trace-store`, and
//! the set of trace content hashes the store already holds. Traces
//! travel by content hash, never by path: [`render_spec`] renders a
//! trace workload as `trace@<contenthash>`, and a driver ships the
//! backing archive ahead of the shard as a [`Message::TraceOffer`]
//! followed by [`Message::TraceChunk`] frames (each under the
//! [`MAX_PAYLOAD`] bound and covered by the frame digest), acknowledged
//! by [`Message::TraceAck`]. The assembled archive is re-verified
//! against `TraceSet`'s content hash before any spec can resolve to it
//! (`super::store`). The v1 `trace:PATH` spec form stays accepted for
//! one version, for pools that share a filesystem.
//!
//! ## Payloads
//!
//! Payloads are UTF-8 text except [`Message::TraceChunk`], which carries
//! one ASCII header line followed by the raw chunk bytes. Specs
//! serialize through [`render_spec`]/[`parse_spec`] — every `RunSpec`
//! field spelled out, with the workload token last. Metric records reuse
//! the results cache's entry format (`crate::cache`), which stores
//! floats as the hex of their IEEE-754 bits: a metrics record survives
//! the wire bit-exactly, and the receiver verifies the embedded
//! canonical key against the spec it asked about, so a record can never
//! be attributed to the wrong point.

use crate::config::ChipConfig;
use crate::runner::RunSpec;
use nocout_sim::config::MeasurementWindow;
use nocout_workloads::trace::TraceSet;
use nocout_workloads::{OpenLoopSpec, Workload, WorkloadClass};
use std::fmt;
use std::io::{self, Read, Write};
use std::sync::Arc;

/// Frame magic: "Nocout Campaign Wire Protocol".
pub const MAGIC: [u8; 4] = *b"NCWP";
/// Protocol version; bump on any frame or payload layout change.
/// Version 2 added the capability handshake and content-addressed trace
/// shipping (`Hello`/`HelloAck`/`TraceOffer`/`TraceChunk`/`TraceAck`).
pub const VERSION: u16 = 2;
/// Upper bound on a frame payload. A shard of a million-point campaign
/// is still far below this; anything larger is a corrupt length field.
/// Trace archives larger than this ship as multiple chunks.
pub const MAX_PAYLOAD: u32 = 64 * 1024 * 1024;
/// Frame header length in bytes.
pub const HEADER_LEN: usize = 20;

/// Resolves a trace content hash to a locally held `TraceSet` — the
/// worker's `--trace-store`, or a driver-side registry. `parse_spec`
/// needs one to resolve the `trace@<contenthash>` spec form.
pub trait TraceLookup {
    /// The trace with this content hash, if held (a corrupt store entry
    /// counts as not held — the implementation quarantines it).
    fn lookup(&self, hash: u64) -> Option<Arc<TraceSet>>;
}

/// Everything that can go wrong decoding a frame. Every variant is a
/// clean, typed failure — malformed input can make the decoder *refuse*,
/// never panic or hang past the declared frame length.
#[derive(Debug)]
pub enum WireError {
    /// The peer closed the connection at a frame boundary.
    Closed,
    /// Transport I/O failed (includes mid-frame EOF and read timeouts
    /// surfaced by the transport as errors).
    Io(io::Error),
    /// No frame arrived within the receiver's deadline.
    Timeout,
    /// The first four bytes were not [`MAGIC`].
    BadMagic([u8; 4]),
    /// The peer speaks a different protocol version — both sides named,
    /// so a mixed-version pool is diagnosed from either end.
    VersionMismatch {
        /// The version this build speaks ([`VERSION`]).
        ours: u16,
        /// The version the peer's frame declared.
        theirs: u16,
    },
    /// The frame declared an unknown message kind.
    UnknownKind(u8),
    /// Reserved flag bits were set.
    BadFlags(u8),
    /// The declared payload length exceeds [`MAX_PAYLOAD`].
    Oversized(u32),
    /// The payload digest did not match — the frame was corrupted in
    /// transit.
    Corrupt,
    /// The payload decoded as the wrong shape for its kind.
    Malformed(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Closed => write!(f, "connection closed"),
            WireError::Io(e) => write!(f, "transport error: {e}"),
            WireError::Timeout => write!(f, "timed out waiting for a frame"),
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            WireError::VersionMismatch { ours, theirs } => {
                write!(
                    f,
                    "protocol version mismatch: peer speaks v{theirs}, this build speaks v{ours}"
                )
            }
            WireError::UnknownKind(k) => write!(f, "unknown frame kind {k}"),
            WireError::BadFlags(b) => write!(f, "reserved frame flags set ({b:#04x})"),
            WireError::Oversized(n) => {
                write!(f, "frame payload of {n} bytes exceeds the {MAX_PAYLOAD}-byte bound")
            }
            WireError::Corrupt => write!(f, "frame payload digest mismatch (corrupt frame)"),
            WireError::Malformed(m) => write!(f, "malformed payload: {m}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        match e.kind() {
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => WireError::Timeout,
            _ => WireError::Io(e),
        }
    }
}

/// The messages of the shard protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Driver → worker: run these specs as shard `shard`.
    ShardRequest {
        /// Driver-assigned shard identifier (echoed in every response).
        shard: u64,
        /// The contiguous spec slice this shard covers.
        specs: Vec<RunSpec>,
    },
    /// Worker → driver: point `index` (shard-local) completed; `entry`
    /// is the bit-exact cache-entry rendering of its metrics.
    PointOk {
        /// Shard the point belongs to.
        shard: u64,
        /// Shard-local spec index.
        index: u32,
        /// `crate::cache` entry text (embedded canonical key + metrics).
        entry: String,
    },
    /// Worker → driver: point `index` failed (panic isolated worker-side).
    PointFailed {
        /// Shard the point belongs to.
        shard: u64,
        /// Shard-local spec index.
        index: u32,
        /// The failure cause.
        error: String,
    },
    /// Worker → driver: shard finished; `points` results were sent.
    ShardDone {
        /// Shard that finished.
        shard: u64,
        /// Number of point results the worker sent.
        points: u32,
    },
    /// Worker → driver: liveness signal while a long point simulates.
    Heartbeat,
    /// Driver → worker, at connection open: the capability handshake
    /// request.
    Hello {
        /// The driver's protocol version (redundant with the frame
        /// header, but explicit in the handshake so a future version can
        /// negotiate instead of reject).
        version: u16,
    },
    /// Worker → driver: the capability advertisement answering
    /// [`Message::Hello`].
    HelloAck {
        /// The worker's protocol version.
        version: u16,
        /// Simulation workers in the worker's pool.
        cores: u32,
        /// Whether the worker has a `--trace-store` (can accept trace
        /// shipments). Without one it stays eligible for synthetic and
        /// open-loop points only.
        store: bool,
        /// Trace content hashes the worker's store already holds.
        trace_hashes: Vec<u64>,
    },
    /// Driver → worker: a trace archive of `total_len` bytes for content
    /// hash `hash` is about to ship (or: do you already hold it?).
    TraceOffer {
        /// The trace's content hash (`TraceSet::content_hash`).
        hash: u64,
        /// Total archive length in bytes.
        total_len: u64,
    },
    /// Driver → worker: one chunk of a trace archive. Chunks arrive in
    /// offset order; the worker appends each to its crash-safe partial
    /// file, so a transfer interrupted at any chunk boundary resumes
    /// from the worker-reported staged length.
    TraceChunk {
        /// The trace's content hash.
        hash: u64,
        /// Byte offset of this chunk within the archive.
        offset: u64,
        /// The raw archive bytes (digest-covered like every payload).
        data: Vec<u8>,
    },
    /// Worker → driver: how much of the archive for `hash` the worker
    /// holds. Sent in answer to an offer (`have` = staged or installed
    /// bytes — the resume point) and after the final chunk commits
    /// (`have` = the full length, hash re-verified).
    TraceAck {
        /// The trace's content hash.
        hash: u64,
        /// Bytes held: the staged partial length, or the full archive
        /// length once installed and verified.
        have: u64,
    },
}

impl Message {
    fn kind(&self) -> u8 {
        match self {
            Message::ShardRequest { .. } => 1,
            Message::PointOk { .. } => 2,
            Message::PointFailed { .. } => 3,
            Message::ShardDone { .. } => 4,
            Message::Heartbeat => 5,
            Message::Hello { .. } => 6,
            Message::HelloAck { .. } => 7,
            Message::TraceOffer { .. } => 8,
            Message::TraceChunk { .. } => 9,
            Message::TraceAck { .. } => 10,
        }
    }

    fn payload(&self) -> Result<Vec<u8>, WireError> {
        Ok(match self {
            Message::ShardRequest { shard, specs } => {
                let mut s = format!("shard {shard} specs {}\n", specs.len());
                for spec in specs {
                    let line = render_spec(spec)?;
                    s.push_str(&line);
                    s.push('\n');
                }
                s.into_bytes()
            }
            Message::PointOk { shard, index, entry } => {
                format!("point {shard} {index}\n{entry}").into_bytes()
            }
            Message::PointFailed { shard, index, error } => {
                format!("point {shard} {index}\n{error}").into_bytes()
            }
            Message::ShardDone { shard, points } => {
                format!("shard {shard} points {points}").into_bytes()
            }
            Message::Heartbeat => Vec::new(),
            Message::Hello { version } => format!("hello v{version}").into_bytes(),
            Message::HelloAck { version, cores, store, trace_hashes } => {
                let mut s = format!(
                    "hello-ack v{version} cores {cores} store {} traces {}\n",
                    u8::from(*store),
                    trace_hashes.len()
                );
                for h in trace_hashes {
                    s.push_str(&format!("{h:016x}\n"));
                }
                s.into_bytes()
            }
            Message::TraceOffer { hash, total_len } => {
                format!("offer {hash:016x} len {total_len}").into_bytes()
            }
            Message::TraceChunk { hash, offset, data } => {
                let mut out = format!("chunk {hash:016x} off {offset}\n").into_bytes();
                out.extend_from_slice(data);
                out
            }
            Message::TraceAck { hash, have } => {
                format!("ack {hash:016x} have {have}").into_bytes()
            }
        })
    }

    fn from_payload(
        kind: u8,
        payload: &[u8],
        traces: Option<&dyn TraceLookup>,
    ) -> Result<Message, WireError> {
        fn malformed(msg: impl Into<String>) -> WireError {
            WireError::Malformed(msg.into())
        }
        // Every kind except TraceChunk is pure UTF-8 text; TraceChunk is
        // one text header line followed by raw bytes.
        if kind == 9 {
            let nl = payload
                .iter()
                .position(|&b| b == b'\n')
                .ok_or_else(|| malformed("trace chunk without a header line"))?;
            let head = std::str::from_utf8(&payload[..nl])
                .map_err(|_| malformed("trace chunk header is not UTF-8"))?;
            let mut it = head.split_whitespace();
            let (hash, offset) = match (it.next(), it.next(), it.next(), it.next(), it.next()) {
                (Some("chunk"), Some(h), Some("off"), Some(o), None) => (
                    u64::from_str_radix(h, 16)
                        .map_err(|_| malformed(format!("bad trace hash `{h}`")))?,
                    o.parse::<u64>()
                        .map_err(|_| malformed(format!("bad chunk offset `{o}`")))?,
                ),
                _ => return Err(malformed(format!("bad trace chunk header `{head}`"))),
            };
            return Ok(Message::TraceChunk {
                hash,
                offset,
                data: payload[nl + 1..].to_vec(),
            });
        }
        let payload = std::str::from_utf8(payload)
            .map_err(|_| malformed("payload is not UTF-8"))?;
        match kind {
            1 => {
                let mut lines = payload.lines();
                let head = lines.next().ok_or_else(|| malformed("empty shard request"))?;
                let mut it = head.split_whitespace();
                let (shard, count) = match (it.next(), it.next(), it.next(), it.next(), it.next())
                {
                    (Some("shard"), Some(s), Some("specs"), Some(n), None) => (
                        s.parse::<u64>()
                            .map_err(|_| malformed(format!("bad shard id `{s}`")))?,
                        n.parse::<usize>()
                            .map_err(|_| malformed(format!("bad spec count `{n}`")))?,
                    ),
                    _ => return Err(malformed(format!("bad shard request header `{head}`"))),
                };
                let specs: Vec<RunSpec> = lines
                    .map(|l| parse_spec_with(l, traces))
                    .collect::<Result<_, _>>()?;
                if specs.len() != count {
                    return Err(malformed(format!(
                        "shard request declares {count} specs but carries {}",
                        specs.len()
                    )));
                }
                Ok(Message::ShardRequest { shard, specs })
            }
            2 | 3 => {
                let (head, body) = payload
                    .split_once('\n')
                    .ok_or_else(|| malformed("point frame without body"))?;
                let mut it = head.split_whitespace();
                let (shard, index) = match (it.next(), it.next(), it.next(), it.next()) {
                    (Some("point"), Some(s), Some(i), None) => (
                        s.parse::<u64>()
                            .map_err(|_| malformed(format!("bad shard id `{s}`")))?,
                        i.parse::<u32>()
                            .map_err(|_| malformed(format!("bad point index `{i}`")))?,
                    ),
                    _ => return Err(malformed(format!("bad point header `{head}`"))),
                };
                Ok(if kind == 2 {
                    Message::PointOk { shard, index, entry: body.to_string() }
                } else {
                    Message::PointFailed { shard, index, error: body.to_string() }
                })
            }
            4 => {
                let mut it = payload.split_whitespace();
                match (it.next(), it.next(), it.next(), it.next(), it.next()) {
                    (Some("shard"), Some(s), Some("points"), Some(n), None) => {
                        Ok(Message::ShardDone {
                            shard: s
                                .parse()
                                .map_err(|_| malformed(format!("bad shard id `{s}`")))?,
                            points: n
                                .parse()
                                .map_err(|_| malformed(format!("bad point count `{n}`")))?,
                        })
                    }
                    _ => Err(malformed(format!("bad shard-done payload `{payload}`"))),
                }
            }
            5 => {
                if payload.is_empty() {
                    Ok(Message::Heartbeat)
                } else {
                    Err(malformed("heartbeat with payload"))
                }
            }
            6 => match payload.strip_prefix("hello v") {
                Some(v) => Ok(Message::Hello {
                    version: v
                        .parse()
                        .map_err(|_| malformed(format!("bad hello version `{v}`")))?,
                }),
                None => Err(malformed(format!("bad hello payload `{payload}`"))),
            },
            7 => {
                let mut lines = payload.lines();
                let head = lines.next().ok_or_else(|| malformed("empty hello-ack"))?;
                let mut it = head.split_whitespace();
                let (version, cores, store, count) = match (
                    it.next(),
                    it.next(),
                    it.next(),
                    it.next(),
                    it.next(),
                    it.next(),
                    it.next(),
                    it.next(),
                ) {
                    (
                        Some("hello-ack"),
                        Some(v),
                        Some("cores"),
                        Some(c),
                        Some("store"),
                        Some(s),
                        Some("traces"),
                        Some(n),
                    ) => (
                        v.strip_prefix('v')
                            .and_then(|v| v.parse::<u16>().ok())
                            .ok_or_else(|| malformed(format!("bad hello-ack version `{v}`")))?,
                        c.parse::<u32>()
                            .map_err(|_| malformed(format!("bad core count `{c}`")))?,
                        match s {
                            "0" => false,
                            "1" => true,
                            _ => return Err(malformed(format!("bad store flag `{s}`"))),
                        },
                        n.parse::<usize>()
                            .map_err(|_| malformed(format!("bad trace count `{n}`")))?,
                    ),
                    _ => return Err(malformed(format!("bad hello-ack header `{head}`"))),
                };
                let trace_hashes: Vec<u64> = lines
                    .map(|l| {
                        u64::from_str_radix(l, 16)
                            .map_err(|_| malformed(format!("bad trace hash `{l}`")))
                    })
                    .collect::<Result<_, _>>()?;
                if trace_hashes.len() != count {
                    return Err(malformed(format!(
                        "hello-ack declares {count} traces but carries {}",
                        trace_hashes.len()
                    )));
                }
                Ok(Message::HelloAck { version, cores, store, trace_hashes })
            }
            8 => {
                let mut it = payload.split_whitespace();
                match (it.next(), it.next(), it.next(), it.next(), it.next()) {
                    (Some("offer"), Some(h), Some("len"), Some(n), None) => {
                        Ok(Message::TraceOffer {
                            hash: u64::from_str_radix(h, 16)
                                .map_err(|_| malformed(format!("bad trace hash `{h}`")))?,
                            total_len: n
                                .parse()
                                .map_err(|_| malformed(format!("bad archive length `{n}`")))?,
                        })
                    }
                    _ => Err(malformed(format!("bad trace offer payload `{payload}`"))),
                }
            }
            10 => {
                let mut it = payload.split_whitespace();
                match (it.next(), it.next(), it.next(), it.next(), it.next()) {
                    (Some("ack"), Some(h), Some("have"), Some(n), None) => {
                        Ok(Message::TraceAck {
                            hash: u64::from_str_radix(h, 16)
                                .map_err(|_| malformed(format!("bad trace hash `{h}`")))?,
                            have: n
                                .parse()
                                .map_err(|_| malformed(format!("bad have length `{n}`")))?,
                        })
                    }
                    _ => Err(malformed(format!("bad trace ack payload `{payload}`"))),
                }
            }
            k => Err(WireError::UnknownKind(k)),
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Encodes one message as a complete frame (header + payload).
///
/// # Errors
///
/// [`WireError::Malformed`] if the message cannot be rendered (a
/// workload token containing a line break) or exceeds [`MAX_PAYLOAD`].
pub fn encode_frame(msg: &Message) -> Result<Vec<u8>, WireError> {
    let bytes = msg.payload()?;
    if bytes.len() > MAX_PAYLOAD as usize {
        return Err(WireError::Oversized(bytes.len() as u32));
    }
    let mut out = Vec::with_capacity(HEADER_LEN + bytes.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.push(msg.kind());
    out.push(0); // flags, reserved
    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(&fnv1a(&bytes).to_le_bytes());
    out.extend_from_slice(&bytes);
    Ok(out)
}

/// Writes one message as a frame and flushes.
///
/// # Errors
///
/// Encoding errors ([`encode_frame`]) or transport I/O errors.
pub fn write_frame<W: Write>(w: &mut W, msg: &Message) -> Result<(), WireError> {
    let frame = encode_frame(msg)?;
    w.write_all(&frame)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame. [`WireError::Closed`] when the peer shut down
/// cleanly at a frame boundary; every malformed input is a typed error,
/// and at most `HEADER_LEN + length` bytes are consumed, so a bad frame
/// can never make the reader hang waiting for data the peer never
/// declared.
///
/// `trace@<contenthash>` specs inside a shard request resolve to a
/// "no trace store" error — use [`read_frame_with`] on receivers that
/// hold traces.
///
/// # Errors
///
/// Any [`WireError`]; see the variant docs.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Message, WireError> {
    read_frame_with(r, None)
}

/// [`read_frame`] with a trace resolver for `trace@<contenthash>` specs.
///
/// # Errors
///
/// Any [`WireError`]; see the variant docs.
pub fn read_frame_with<R: Read>(
    r: &mut R,
    traces: Option<&dyn TraceLookup>,
) -> Result<Message, WireError> {
    let mut header = [0u8; HEADER_LEN];
    // Distinguish a clean close (0 bytes at a frame boundary) from a
    // mid-frame EOF (a torn frame).
    let mut got = 0;
    while got < HEADER_LEN {
        match r.read(&mut header[got..]) {
            Ok(0) if got == 0 => return Err(WireError::Closed),
            Ok(0) => {
                return Err(WireError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside a frame header",
                )))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    decode_after_header(&header, r, traces)
}

/// Decodes a frame whose header bytes were already read; pulls exactly
/// the declared payload from `r`.
fn decode_after_header<R: Read>(
    header: &[u8; HEADER_LEN],
    r: &mut R,
    traces: Option<&dyn TraceLookup>,
) -> Result<Message, WireError> {
    if header[0..4] != MAGIC {
        return Err(WireError::BadMagic([header[0], header[1], header[2], header[3]]));
    }
    let version = u16::from_le_bytes([header[4], header[5]]);
    if version != VERSION {
        return Err(WireError::VersionMismatch { ours: VERSION, theirs: version });
    }
    let kind = header[6];
    if !(1..=10).contains(&kind) {
        return Err(WireError::UnknownKind(kind));
    }
    if header[7] != 0 {
        return Err(WireError::BadFlags(header[7]));
    }
    let len = u32::from_le_bytes([header[8], header[9], header[10], header[11]]);
    if len > MAX_PAYLOAD {
        return Err(WireError::Oversized(len));
    }
    let digest = u64::from_le_bytes([
        header[12], header[13], header[14], header[15], header[16], header[17], header[18],
        header[19],
    ]);
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    if fnv1a(&payload) != digest {
        return Err(WireError::Corrupt);
    }
    Message::from_payload(kind, &payload, traces)
}

/// Decodes one frame from a complete byte buffer (tests and the
/// pipe-transport reader).
///
/// # Errors
///
/// Any [`WireError`]; trailing bytes after the declared frame are
/// [`WireError::Malformed`].
pub fn decode_frame(bytes: &[u8]) -> Result<Message, WireError> {
    decode_frame_with(bytes, None)
}

/// [`decode_frame`] with a trace resolver for `trace@<contenthash>`
/// specs.
///
/// # Errors
///
/// Any [`WireError`]; trailing bytes after the declared frame are
/// [`WireError::Malformed`].
pub fn decode_frame_with(
    bytes: &[u8],
    traces: Option<&dyn TraceLookup>,
) -> Result<Message, WireError> {
    let mut cursor = bytes;
    let msg = read_frame_with(&mut cursor, traces)?;
    if !cursor.is_empty() {
        return Err(WireError::Malformed(format!(
            "{} trailing bytes after the frame",
            cursor.len()
        )));
    }
    Ok(msg)
}

/// Renders a spec as one line: every field as `key=value` in a fixed
/// order, the workload token last. Trace workloads render by content
/// hash (`trace@<contenthash>`) — never by path — so a spec means the
/// same bytes on every host; the worker resolves the hash against its
/// trace store.
///
/// # Errors
///
/// [`WireError::Malformed`] for a workload token containing a line
/// break (impossible for the hash and synthetic forms; a defensive
/// rejection for future token kinds).
pub fn render_spec(spec: &RunSpec) -> Result<String, WireError> {
    let c = &spec.chip;
    let workload = match &spec.workload {
        WorkloadClass::Synthetic(w) => format!("synthetic:{}", w.key()),
        WorkloadClass::Trace(t) => format!("trace@{:016x}", t.content_hash()),
        WorkloadClass::OpenLoop(s) => s.token(),
    };
    if workload.contains('\n') || workload.contains('\r') {
        return Err(WireError::Malformed(
            "workload token contains a line break — cannot serialize".into(),
        ));
    }
    let active = match c.active_core_override {
        Some(n) => n.to_string(),
        None => "-".to_string(),
    };
    Ok(format!(
        "org={:?} cores={} llc_bytes={} link_bits={} mem_channels={} banks={} \
         conc={} active={} express={} llc_rows={} warmup={} measure={} seed={} \
         workload={workload}",
        c.organization,
        c.cores,
        c.llc_total_bytes,
        c.link_width_bits,
        c.mem_channels,
        c.banks_per_llc_tile,
        c.concentration,
        active,
        u8::from(c.express_links),
        c.llc_rows,
        spec.window.warmup_cycles,
        spec.window.measure_cycles,
        spec.seed,
    ))
}

/// Parses one [`render_spec`] line back into a `RunSpec`, with no trace
/// resolver: `trace@<contenthash>` specs fail with a typed "no trace
/// store" error. The v1 `trace:PATH` form (accepted for one more
/// version, for pools sharing a filesystem) loads its `TraceSet` from
/// the named directory.
///
/// # Errors
///
/// [`WireError::Malformed`] naming the offending field.
pub fn parse_spec(line: &str) -> Result<RunSpec, WireError> {
    parse_spec_with(line, None)
}

/// Parses one [`render_spec`] line back into a `RunSpec`. Trace
/// workloads in the `trace@<contenthash>` form resolve through `traces`
/// (a worker's `--trace-store`); the v1 `trace:PATH` form loads from
/// the named directory. Either way a missing, corrupt, or edited trace
/// fails here, before any simulation.
///
/// # Errors
///
/// [`WireError::Malformed`] naming the offending field.
pub fn parse_spec_with(
    line: &str,
    traces: Option<&dyn TraceLookup>,
) -> Result<RunSpec, WireError> {
    fn malformed(msg: impl Into<String>) -> WireError {
        WireError::Malformed(msg.into())
    }
    let (fields_part, workload_part) = line
        .split_once(" workload=")
        .ok_or_else(|| malformed(format!("spec line without workload: `{line}`")))?;
    let mut fields = std::collections::HashMap::new();
    for tok in fields_part.split_whitespace() {
        let (k, v) = tok
            .split_once('=')
            .ok_or_else(|| malformed(format!("bad spec token `{tok}`")))?;
        fields.insert(k, v);
    }
    fn take<'a>(
        fields: &std::collections::HashMap<&str, &'a str>,
        key: &str,
    ) -> Result<&'a str, WireError> {
        fields
            .get(key)
            .copied()
            .ok_or_else(|| WireError::Malformed(format!("spec missing field `{key}`")))
    }
    fn num<T: std::str::FromStr>(
        fields: &std::collections::HashMap<&str, &str>,
        key: &str,
    ) -> Result<T, WireError> {
        let v = take(fields, key)?;
        v.parse()
            .map_err(|_| WireError::Malformed(format!("bad value for `{key}`: `{v}`")))
    }
    let organization = take(&fields, "org")?
        .parse()
        .map_err(|e: String| malformed(e))?;
    let active = match take(&fields, "active")? {
        "-" => None,
        v => Some(v.parse().map_err(|_| {
            malformed(format!("bad value for `active`: `{v}`"))
        })?),
    };
    let express = match take(&fields, "express")? {
        "0" => false,
        "1" => true,
        v => return Err(malformed(format!("bad value for `express`: `{v}`"))),
    };
    let chip = ChipConfig {
        organization,
        cores: num(&fields, "cores")?,
        llc_total_bytes: num(&fields, "llc_bytes")?,
        link_width_bits: num(&fields, "link_bits")?,
        mem_channels: num(&fields, "mem_channels")?,
        banks_per_llc_tile: num(&fields, "banks")?,
        concentration: num(&fields, "conc")?,
        active_core_override: active,
        express_links: express,
        llc_rows: num(&fields, "llc_rows")?,
    };
    let workload = if let Some(key) = workload_part.strip_prefix("synthetic:") {
        WorkloadClass::from(Workload::from_key(key).ok_or_else(|| {
            malformed(format!("unknown synthetic workload `{key}`"))
        })?)
    } else if let Some(hash) = workload_part.strip_prefix("trace@") {
        let hash = u64::from_str_radix(hash, 16)
            .map_err(|_| malformed(format!("bad trace content hash `{hash}`")))?;
        let set = traces
            .ok_or_else(|| {
                malformed(format!(
                    "spec names trace {hash:016x} but this receiver has no trace \
                     store (start the worker with --trace-store DIR)"
                ))
            })?
            .lookup(hash)
            .ok_or_else(|| {
                malformed(format!(
                    "trace {hash:016x} is not in the local trace store"
                ))
            })?;
        WorkloadClass::Trace(set)
    } else if let Some(path) = workload_part.strip_prefix("trace:") {
        WorkloadClass::from(TraceSet::load(path).map_err(|e| {
            malformed(format!("cannot load trace `{path}`: {e}"))
        })?)
    } else if workload_part.starts_with("openloop:") {
        WorkloadClass::from(OpenLoopSpec::parse_token(workload_part).ok_or_else(
            || malformed(format!("bad open-loop workload token `{workload_part}`")),
        )?)
    } else {
        return Err(malformed(format!("bad workload token `{workload_part}`")));
    };
    Ok(RunSpec {
        chip,
        workload,
        window: MeasurementWindow::new(
            num(&fields, "warmup")?,
            num(&fields, "measure")?,
        ),
        seed: num(&fields, "seed")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Organization;

    fn spec() -> RunSpec {
        RunSpec::new(
            ChipConfig::paper(Organization::NocOut),
            Workload::DataServing,
        )
        .fast()
        .with_seed(7)
    }

    #[test]
    fn spec_line_round_trips() {
        let s = spec();
        let parsed = parse_spec(&render_spec(&s).unwrap()).unwrap();
        assert_eq!(parsed, s);
        assert_eq!(parsed.cache_key(), s.cache_key());
    }

    #[test]
    fn spec_round_trips_every_field() {
        let mut s = spec();
        s.chip.active_core_override = Some(12);
        s.chip.express_links = true;
        s.chip.llc_rows = 2;
        s.chip.concentration = 2;
        s.chip.cores = 128;
        let parsed = parse_spec(&render_spec(&s).unwrap()).unwrap();
        assert_eq!(parsed, s);
    }

    #[test]
    fn frame_round_trips_every_message_kind() {
        let msgs = [
            Message::ShardRequest { shard: 3, specs: vec![spec(), spec().with_seed(9)] },
            Message::PointOk { shard: 3, index: 1, entry: "multi\nline\nentry".into() },
            Message::PointFailed { shard: 3, index: 0, error: "boom:\n  detail".into() },
            Message::ShardDone { shard: 3, points: 2 },
            Message::Heartbeat,
            Message::Hello { version: VERSION },
            Message::HelloAck {
                version: VERSION,
                cores: 8,
                store: true,
                trace_hashes: vec![0, 0xdead_beef_cafe_f00d, u64::MAX],
            },
            Message::TraceOffer { hash: 0x1234, total_len: 1 << 40 },
            Message::TraceChunk {
                hash: 0x1234,
                offset: 77,
                data: vec![0, 1, 2, 0xff, b'\n', 0x80],
            },
            Message::TraceAck { hash: 0x1234, have: 4096 },
        ];
        for msg in msgs {
            let frame = encode_frame(&msg).unwrap();
            assert_eq!(decode_frame(&frame).unwrap(), msg, "{msg:?}");
        }
    }

    #[test]
    fn truncated_frames_are_typed_errors() {
        let frame = encode_frame(&Message::ShardDone { shard: 1, points: 4 }).unwrap();
        for cut in 0..frame.len() {
            let err = decode_frame(&frame[..cut]).unwrap_err();
            // Never a panic, never an Ok; cut at 0 is a clean close.
            if cut == 0 {
                assert!(matches!(err, WireError::Closed), "cut {cut}: {err}");
            }
        }
    }

    #[test]
    fn corrupt_header_fields_are_rejected() {
        let frame = encode_frame(&Message::Heartbeat).unwrap();
        let mut bad = frame.clone();
        bad[0] = b'X';
        assert!(matches!(decode_frame(&bad).unwrap_err(), WireError::BadMagic(_)));
        let mut bad = frame.clone();
        bad[4] = 0xff;
        assert!(matches!(
            decode_frame(&bad).unwrap_err(),
            WireError::VersionMismatch { .. }
        ));
        let mut bad = frame.clone();
        bad[6] = 200;
        assert!(matches!(decode_frame(&bad).unwrap_err(), WireError::UnknownKind(200)));
        let mut bad = frame.clone();
        bad[7] = 1;
        assert!(matches!(decode_frame(&bad).unwrap_err(), WireError::BadFlags(1)));
        let mut bad = frame;
        bad[11] = 0xff; // length beyond MAX_PAYLOAD
        assert!(matches!(decode_frame(&bad).unwrap_err(), WireError::Oversized(_)));
    }

    #[test]
    fn version_mismatch_names_both_versions() {
        let mut frame = encode_frame(&Message::Heartbeat).unwrap();
        frame[4..6].copy_from_slice(&1u16.to_le_bytes()); // a v1 frame
        let err = decode_frame(&frame).unwrap_err();
        match &err {
            WireError::VersionMismatch { ours, theirs } => {
                assert_eq!((*ours, *theirs), (VERSION, 1));
            }
            other => panic!("expected VersionMismatch, got {other:?}"),
        }
        let msg = err.to_string();
        assert!(msg.contains("v1") && msg.contains(&format!("v{VERSION}")), "{msg}");
    }

    #[test]
    fn corrupt_payload_fails_the_digest() {
        let msg = Message::PointOk { shard: 0, index: 0, entry: "value 12345".into() };
        let mut frame = encode_frame(&msg).unwrap();
        let last = frame.len() - 1;
        frame[last] ^= 0x08; // flip one digit bit: plausible but wrong
        assert!(matches!(decode_frame(&frame).unwrap_err(), WireError::Corrupt));
    }

    #[test]
    fn corrupt_chunk_data_fails_the_digest() {
        let msg = Message::TraceChunk { hash: 9, offset: 0, data: vec![7u8; 64] };
        let mut frame = encode_frame(&msg).unwrap();
        let last = frame.len() - 1;
        frame[last] ^= 0x01;
        assert!(matches!(decode_frame(&frame).unwrap_err(), WireError::Corrupt));
    }

    #[test]
    fn trace_at_hash_without_a_store_is_a_typed_error() {
        let line = render_spec(&spec()).unwrap();
        let line = line.split(" workload=").next().unwrap().to_string()
            + " workload=trace@00000000deadbeef";
        let err = parse_spec(&line).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("no trace store"), "{msg}");
        assert!(msg.contains("00000000deadbeef"), "{msg}");
    }
}
