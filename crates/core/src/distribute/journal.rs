//! Crash-safe campaign manifest journal.
//!
//! The driver appends every *worker-produced* point outcome — successful
//! metrics as their bit-exact cache-entry rendering, deterministic
//! simulation failures as their message — to a plain-text journal, one
//! record at a time, flushed per record. After a driver crash,
//! `--resume` replays the journal and only dispatches the points it does
//! not cover. Transport-level failures (a shard that exhausted its
//! retries) are deliberately *not* journaled: they describe the cluster,
//! not the campaign, and a resume should retry them.
//!
//! ## Format
//!
//! ```text
//! nocout-shard-journal v1
//! campaign <fnv64-hex> points <n>
//! ok <index>
//! <cache-entry text, one or more lines>
//! end <index>
//! fail <index> <message, \n escaped as \\n>
//! end <index>
//! ```
//!
//! The `campaign` line fingerprints the spec sequence (FNV-1a 64 over
//! every `RunSpec::cache_key`), so a journal can never be replayed
//! against a different campaign. Every record is terminated by a
//! matching `end <index>` marker: a record the crash tore in half has no
//! marker, so [`Journal::resume`] stops at the last complete record and
//! truncates the torn tail before appending resumes. `ok` entries are
//! re-verified against their spec's canonical key on load — a corrupt
//! body degrades to "not covered", never to wrong data.

use super::wire::WireError;
use crate::cache::parse_entry;
use crate::runner::{PointError, RunSpec};
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

const FORMAT: &str = "nocout-shard-journal v1";

/// FNV-1a 64 fingerprint of a campaign's spec sequence.
pub fn campaign_fingerprint(specs: &[RunSpec]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for spec in specs {
        for &b in spec.cache_key().as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= b'\n' as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One outcome recovered from a journal.
#[derive(Debug, Clone)]
pub enum JournalRecord {
    /// The point completed; the entry text parses bit-exactly.
    Ok(String),
    /// The point failed deterministically worker-side.
    Failed(String),
}

/// An append-only, crash-safe record of completed campaign points.
#[derive(Debug)]
pub struct Journal {
    writer: BufWriter<File>,
    path: PathBuf,
}

impl Journal {
    /// Starts a fresh journal for this campaign, truncating `path`.
    ///
    /// # Errors
    ///
    /// File creation/write errors.
    pub fn create(path: &Path, specs: &[RunSpec]) -> std::io::Result<Journal> {
        let mut writer = BufWriter::new(File::create(path)?);
        writeln!(writer, "{FORMAT}")?;
        writeln!(
            writer,
            "campaign {:016x} points {}",
            campaign_fingerprint(specs),
            specs.len()
        )?;
        writer.flush()?;
        Ok(Journal {
            writer,
            path: path.to_path_buf(),
        })
    }

    /// Resumes from an existing journal: verifies the campaign
    /// fingerprint, replays every complete record, truncates any torn
    /// tail, and returns the journal (positioned for appending) plus the
    /// recovered outcomes keyed by global spec index. A missing file is
    /// the same as a fresh [`Journal::create`].
    ///
    /// # Errors
    ///
    /// I/O errors, and [`WireError::Malformed`] when the journal belongs
    /// to a *different* campaign (wrong fingerprint or point count) —
    /// resuming someone else's journal is a configuration error, not a
    /// torn tail.
    pub fn resume(
        path: &Path,
        specs: &[RunSpec],
    ) -> Result<(Journal, Vec<Option<JournalRecord>>), WireError> {
        if !path.exists() {
            let journal = Journal::create(path, specs).map_err(WireError::Io)?;
            return Ok((journal, vec![None; specs.len()]));
        }
        let text = std::fs::read_to_string(path).map_err(WireError::Io)?;
        let mut recovered: Vec<Option<JournalRecord>> = vec![None; specs.len()];
        // Byte offset of the last complete record (initialized after the
        // header validates).
        let mut good_end;
        let mut offset = 0usize;
        let mut lines = text.split_inclusive('\n');
        let mut next = |offset: &mut usize| -> Option<&str> {
            let line = lines.next()?;
            *offset += line.len();
            // A last line without '\n' is by definition torn.
            line.strip_suffix('\n')
        };
        let header_ok = next(&mut offset) == Some(FORMAT);
        if !header_ok {
            return Err(WireError::Malformed(format!(
                "{} is not a shard journal",
                path.display()
            )));
        }
        match next(&mut offset) {
            Some(line) => {
                let expect = format!(
                    "campaign {:016x} points {}",
                    campaign_fingerprint(specs),
                    specs.len()
                );
                if line != expect {
                    return Err(WireError::Malformed(format!(
                        "journal {} belongs to a different campaign \
                         (found `{line}`, this campaign is `{expect}`) — \
                         pass a fresh --journal path or drop --resume",
                        path.display()
                    )));
                }
            }
            None => {
                return Err(WireError::Malformed(format!(
                    "journal {} is truncated before its campaign line",
                    path.display()
                )))
            }
        }
        good_end = offset;

        // Records: parse greedily, stop at the first torn or invalid one.
        'records: while let Some(head) = next(&mut offset) {
            let (record, index) = if let Some(rest) = head.strip_prefix("ok ") {
                let Ok(index) = rest.parse::<usize>() else { break };
                if index >= specs.len() {
                    break;
                }
                let marker = format!("end {index}");
                let mut body = String::new();
                loop {
                    match next(&mut offset) {
                        None => break 'records, // torn mid-record
                        Some(line) if line == marker => break,
                        Some(line) => {
                            body.push_str(line);
                            body.push('\n');
                        }
                    }
                }
                if parse_entry(&body, &specs[index].cache_key()).is_none() {
                    break; // corrupt body: not covered, stop trusting the file
                }
                (JournalRecord::Ok(body), index)
            } else if let Some(rest) = head.strip_prefix("fail ") {
                let Some((idx, msg)) = rest.split_once(' ') else { break };
                let Ok(index) = idx.parse::<usize>() else { break };
                if index >= specs.len() {
                    break;
                }
                match next(&mut offset) {
                    Some(line) if line == format!("end {index}") => {}
                    _ => break, // torn
                }
                (JournalRecord::Failed(msg.replace("\\n", "\n")), index)
            } else {
                break;
            };
            recovered[index] = Some(record);
            good_end = offset;
        }

        // Truncate the torn tail, then append after it.
        let file = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(WireError::Io)?;
        file.set_len(good_end as u64).map_err(WireError::Io)?;
        let mut writer = BufWriter::new(file);
        writer
            .seek(SeekFrom::Start(good_end as u64))
            .map_err(WireError::Io)?;
        Ok((
            Journal {
                writer,
                path: path.to_path_buf(),
            },
            recovered,
        ))
    }

    /// The journal file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one successful point (its bit-exact cache-entry text) and
    /// flushes — after this returns, a crash cannot lose the record.
    ///
    /// # Errors
    ///
    /// Write errors.
    pub fn record_ok(&mut self, index: usize, entry: &str) -> std::io::Result<()> {
        writeln!(self.writer, "ok {index}")?;
        self.writer.write_all(entry.as_bytes())?;
        if !entry.ends_with('\n') {
            writeln!(self.writer)?;
        }
        writeln!(self.writer, "end {index}")?;
        self.writer.flush()
    }

    /// Appends one deterministic worker-side failure and flushes.
    ///
    /// # Errors
    ///
    /// Write errors.
    pub fn record_failed(&mut self, index: usize, error: &PointError) -> std::io::Result<()> {
        writeln!(
            self.writer,
            "fail {index} {}",
            error.message.replace('\n', "\\n")
        )?;
        writeln!(self.writer, "end {index}")?;
        self.writer.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ChipConfig, Organization};
    use nocout_workloads::Workload;

    fn specs() -> Vec<RunSpec> {
        (1..=3)
            .map(|seed| {
                RunSpec::new(
                    ChipConfig::with_cores(Organization::Mesh, 16),
                    Workload::WebSearch,
                )
                .fast()
                .with_seed(seed)
            })
            .collect()
    }

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("nocout-journal-{name}-{}", std::process::id()))
    }

    #[test]
    fn journal_round_trips_and_survives_torn_tail() {
        let path = tmp("torn");
        let _ = std::fs::remove_file(&path);
        let specs = specs();
        let metrics = crate::runner::run(&specs[0]);
        let entry = crate::cache::render_entry(&specs[0].cache_key(), &metrics);
        {
            let mut j = Journal::create(&path, &specs).unwrap();
            j.record_ok(0, &entry).unwrap();
            j.record_failed(
                1,
                &PointError {
                    cache_key: specs[1].cache_key(),
                    message: "boom\nwith detail".into(),
                },
            )
            .unwrap();
        }
        // Tear the file mid-record: an `ok 2` header with half a body and
        // no end marker, as a crash between write and flush would leave.
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            write!(f, "ok 2\nnocout-results-cache v1\nkey trunca").unwrap();
        }
        let (mut j, recovered) = Journal::resume(&path, &specs).unwrap();
        assert!(matches!(&recovered[0], Some(JournalRecord::Ok(e)) if *e == entry));
        assert!(
            matches!(&recovered[1], Some(JournalRecord::Failed(m)) if m == "boom\nwith detail")
        );
        assert!(recovered[2].is_none(), "torn record must not be trusted");
        // The torn tail is gone: appending record 2 (rendered against its
        // own spec's key — entries must verify) and resuming again
        // recovers all three.
        j.record_ok(2, &crate::cache::render_entry(&specs[2].cache_key(), &metrics))
            .unwrap();
        drop(j);
        let (_, recovered) = Journal::resume(&path, &specs).unwrap();
        assert!(recovered.iter().all(Option::is_some));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn journal_refuses_a_different_campaign() {
        let path = tmp("fingerprint");
        let _ = std::fs::remove_file(&path);
        let specs = specs();
        drop(Journal::create(&path, &specs).unwrap());
        let other: Vec<RunSpec> = specs.iter().map(|s| s.clone().with_seed(99)).collect();
        let err = Journal::resume(&path, &other).unwrap_err();
        assert!(
            err.to_string().contains("different campaign"),
            "{err}"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fingerprint_tracks_the_spec_sequence() {
        let a = specs();
        let mut b = a.clone();
        b.swap(0, 1);
        assert_ne!(campaign_fingerprint(&a), campaign_fingerprint(&b));
        assert_eq!(campaign_fingerprint(&a), campaign_fingerprint(&a.clone()));
    }
}
