//! Chip configuration: the organizations and Table 1 parameters.

use nocout_noc::topology::fbfly::FbflySpec;
use nocout_noc::topology::mesh::MeshSpec;
use nocout_noc::topology::nocout::NocOutSpec;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The evaluated system organizations (§5.1) plus the two analytic fabrics
/// of Fig. 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Organization {
    /// Tiled 8×8 mesh (baseline).
    Mesh,
    /// Tiled 2-D flattened butterfly.
    FlattenedButterfly,
    /// NOC-Out: segregated cores/LLC with reduction and dispersion trees.
    NocOut,
    /// Contention-free wire-delay-only fabric (Fig. 1 "Ideal").
    IdealWire,
    /// Contention-free 3-cycles-per-hop mesh (Fig. 1 "Mesh").
    ZeroLoadMesh,
}

impl Organization {
    /// The three detailed organizations compared in Figs. 7–9.
    pub const EVALUATED: [Organization; 3] = [
        Organization::Mesh,
        Organization::FlattenedButterfly,
        Organization::NocOut,
    ];

    /// Display name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Organization::Mesh => "Mesh",
            Organization::FlattenedButterfly => "Flattened Butterfly",
            Organization::NocOut => "NOC-Out",
            Organization::IdealWire => "Ideal",
            Organization::ZeroLoadMesh => "Mesh (zero-load)",
        }
    }
}

impl fmt::Display for Organization {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Organization {
    type Err = String;

    /// Parses the stable identifier (the `Debug` variant name, as used in
    /// cache keys and shard-request wire records).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Ok(match s {
            "Mesh" => Organization::Mesh,
            "FlattenedButterfly" => Organization::FlattenedButterfly,
            "NocOut" => Organization::NocOut,
            "IdealWire" => Organization::IdealWire,
            "ZeroLoadMesh" => Organization::ZeroLoadMesh,
            _ => {
                return Err(format!(
                    "`{s}` is not an organization (expected Mesh, \
                     FlattenedButterfly, NocOut, IdealWire or ZeroLoadMesh)"
                ))
            }
        })
    }
}

/// Full chip configuration (Table 1 defaults via [`ChipConfig::paper`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChipConfig {
    /// Interconnect/LLC organization.
    pub organization: Organization,
    /// Number of cores (a power of two up to 64; 128 with concentration).
    pub cores: usize,
    /// Total LLC capacity in bytes (8 MB in Table 1).
    pub llc_total_bytes: u64,
    /// Link (flit) width in bits (128 in the main study; narrowed for the
    /// Fig. 9 area-normalized comparison).
    pub link_width_bits: u32,
    /// DDR3-1667 memory channels.
    pub mem_channels: usize,
    /// NOC-Out: internal banks per LLC tile (2 per §5.1).
    pub banks_per_llc_tile: usize,
    /// NOC-Out: cores per tree-node local port (§7.1 concentration).
    pub concentration: usize,
    /// Overrides the workload's own core-count scaling (used by the
    /// scalability ablation to load all cores of a 128-core chip).
    pub active_core_override: Option<usize>,
    /// NOC-Out §7.1: insert express links in the trees.
    pub express_links: bool,
    /// NOC-Out §7.1: rows of LLC tiles (2 = 2-D LLC butterfly).
    pub llc_rows: usize,
}

impl ChipConfig {
    /// Table 1's 64-core configuration under the given organization.
    pub fn paper(organization: Organization) -> Self {
        ChipConfig {
            organization,
            cores: 64,
            llc_total_bytes: 8 * 1024 * 1024,
            link_width_bits: 128,
            mem_channels: 4,
            banks_per_llc_tile: 2,
            concentration: 1,
            active_core_override: None,
            express_links: false,
            llc_rows: 1,
        }
    }

    /// Same configuration at a different core count (Fig. 1 sweep).
    pub fn with_cores(organization: Organization, cores: usize) -> Self {
        ChipConfig {
            cores,
            ..ChipConfig::paper(organization)
        }
    }

    /// Same configuration at a different link width (Fig. 9 sweep).
    pub fn with_link_width(mut self, bits: u32) -> Self {
        self.link_width_bits = bits;
        self
    }

    /// Number of LLC tiles under this organization (one per tile in tiled
    /// designs; 8 centre tiles for NOC-Out).
    pub fn llc_tiles(&self) -> usize {
        match self.organization {
            Organization::NocOut => 8 * self.llc_rows,
            _ => self.cores,
        }
    }

    /// The mesh spec equivalent to this configuration.
    pub fn mesh_spec(&self) -> MeshSpec {
        let mut s = MeshSpec::with_tiles(self.cores);
        s.link_width_bits = self.link_width_bits;
        s.num_memory_channels = self.mem_channels;
        s
    }

    /// The flattened-butterfly spec equivalent to this configuration.
    pub fn fbfly_spec(&self) -> FbflySpec {
        let (cols, rows) = nocout_noc::topology::grid_for_tiles(self.cores);
        FbflySpec {
            cols,
            rows,
            link_width_bits: self.link_width_bits,
            tile_mm: nocout_noc::topology::TILED_TILE_MM,
            num_memory_channels: self.mem_channels,
        }
    }

    /// The NOC-Out spec equivalent to this configuration.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is not divisible into the 2-sided column layout.
    pub fn nocout_spec(&self) -> NocOutSpec {
        let per_column_pair = 2 * self.concentration;
        assert!(
            self.cores.is_multiple_of(8 * per_column_pair) || self.cores <= 16,
            "NOC-Out requires cores divisible across 8 columns and 2 sides"
        );
        let columns = 8;
        let rows = (self.cores / (columns * per_column_pair)).max(1);
        NocOutSpec {
            columns,
            rows_per_side: rows,
            concentration: self.concentration,
            link_width_bits: self.link_width_bits,
            tile_mm: nocout_noc::topology::NOCOUT_TILE_MM,
            num_memory_channels: self.mem_channels,
            express_links: self.express_links,
            llc_rows: self.llc_rows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_table1() {
        let c = ChipConfig::paper(Organization::Mesh);
        assert_eq!(c.cores, 64);
        assert_eq!(c.llc_total_bytes, 8 * 1024 * 1024);
        assert_eq!(c.link_width_bits, 128);
        assert_eq!(c.mem_channels, 4);
    }

    #[test]
    fn llc_tile_counts() {
        assert_eq!(ChipConfig::paper(Organization::Mesh).llc_tiles(), 64);
        assert_eq!(ChipConfig::paper(Organization::NocOut).llc_tiles(), 8);
    }

    #[test]
    fn nocout_spec_yields_64_cores() {
        let spec = ChipConfig::paper(Organization::NocOut).nocout_spec();
        assert_eq!(spec.cores(), 64);
        assert_eq!(spec.rows_per_side, 4);
    }

    #[test]
    fn concentration_halves_rows() {
        let mut c = ChipConfig::paper(Organization::NocOut);
        c.cores = 128;
        c.concentration = 2;
        let spec = c.nocout_spec();
        assert_eq!(spec.cores(), 128);
        assert_eq!(spec.rows_per_side, 4);
    }

    #[test]
    fn organization_names() {
        assert_eq!(Organization::NocOut.to_string(), "NOC-Out");
        assert_eq!(Organization::EVALUATED.len(), 3);
    }
}
