//! On-disk results cache: memoizes [`SystemMetrics`] by [`RunSpec`]
//! content hash.
//!
//! Simulation points are pure functions of their spec (configuration +
//! workload + window + seed), so a campaign that shares points with an
//! earlier one — a figure grid re-run after editing one organization, a
//! sweep extended by two widths — only needs to pay for the new points.
//! This is the first slice of a Parsimon-style decomposition of the
//! campaign layer: independent sub-simulations keyed and memoized by
//! spec, with the aggregation layered on top.
//!
//! ## Key and invalidation
//!
//! The cache key is a *content* hash (FNV-1a 64) over
//! [`RunSpec::cache_key`], a versioned canonical rendering that spells
//! out every field of the spec: all ten `ChipConfig` fields, the
//! workload class, both window lengths, and the seed. Any field change —
//! different link width, another seed, a longer window — therefore maps
//! to a different entry; there are no partial hits. A trace workload
//! contributes its *content* hash plus stream/instruction counts (see
//! `nocout_workloads::trace`), so editing any stream byte invalidates
//! its cached replays even when the path is unchanged. The canonical
//! string is stored inside the entry and verified on every load, so for
//! synthetic specs a hash collision (or a format change that reuses a
//! hash) degrades to a miss, never to wrong data; for traces the
//! canonical string itself contains a 64-bit digest of the content, so
//! that guarantee is probabilistic (aliasing needs an FNV-64 collision
//! *plus* matching stream/instruction counts). Bump
//! [`FORMAT`] when the entry layout changes; bump the `v2` prefix in
//! [`RunSpec::cache_key`] when simulator *behaviour* changes so that
//! stale results from older binaries cannot be replayed.
//!
//! Metrics round-trip bit-exactly: floats are stored as the hex of their
//! IEEE-754 bits, so a cache hit is indistinguishable from re-running the
//! simulation — a property the integration tests and the CI byte-identity
//! gate both enforce.
//!
//! ## Concurrency
//!
//! Entries are written to a temporary file and atomically renamed into
//! place, so concurrent sweeps sharing a cache directory can race only
//! toward identical bytes. Stores are best-effort: an unwritable cache
//! degrades to uncached operation rather than failing the run.

use crate::metrics::{LlcSummary, MemSummary, NetSummary, SystemMetrics, TailSummary};
use crate::runner::RunSpec;
use std::cell::Cell;
use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};

/// Entry format version; part of every file and checked on load.
const FORMAT: &str = "nocout-results-cache v2";

impl RunSpec {
    /// The canonical, versioned rendering of this spec that the results
    /// cache hashes and verifies. Every field of the spec appears by
    /// name; any change to any field changes the key (the invalidation
    /// rule is exactly "the spec changed"). Trace workloads render as
    /// their *content* hash, so editing or re-capturing a trace directory
    /// invalidates its cached replay results even at the same path. The
    /// `v2` prefix is the *behaviour* version: bump it when the
    /// simulator's outputs change for unchanged specs (v1 → v2: the
    /// workload generator moved to a cumulative-threshold op-mix draw,
    /// changing every synthetic stream).
    pub fn cache_key(&self) -> String {
        let c = &self.chip;
        format!(
            "v2 org={:?} cores={} llc_bytes={} link_bits={} mem_channels={} \
             banks_per_llc_tile={} concentration={} active_override={:?} \
             express={} llc_rows={} workload={} warmup={} measure={} seed={}",
            c.organization,
            c.cores,
            c.llc_total_bytes,
            c.link_width_bits,
            c.mem_channels,
            c.banks_per_llc_tile,
            c.concentration,
            c.active_core_override,
            c.express_links,
            c.llc_rows,
            self.workload.cache_token(),
            self.window.warmup_cycles,
            self.window.measure_cycles,
            self.seed
        )
    }

    /// FNV-1a 64 hash of [`RunSpec::cache_key`] — the cache file name.
    pub fn content_hash(&self) -> u64 {
        fnv1a(self.cache_key().as_bytes())
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A directory of memoized simulation results, plus hit/miss accounting
/// for the run it is attached to.
///
/// # Examples
///
/// ```no_run
/// use nocout::cache::ResultsCache;
/// use nocout::config::{ChipConfig, Organization};
/// use nocout::runner::RunSpec;
/// use nocout_workloads::Workload;
///
/// let cache = ResultsCache::open("results-cache").unwrap();
/// let spec = RunSpec::new(ChipConfig::paper(Organization::Mesh), Workload::WebSearch);
/// if cache.get(&spec).is_none() {
///     let metrics = nocout::run(&spec);
///     cache.put(&spec, &metrics);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct ResultsCache {
    dir: PathBuf,
    hits: Cell<u64>,
    misses: Cell<u64>,
    store_failures: Cell<u64>,
    quarantined: Cell<u64>,
}

impl ResultsCache {
    /// Opens (creating if needed) a cache directory.
    pub fn open<P: Into<PathBuf>>(dir: P) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(ResultsCache {
            dir,
            hits: Cell::new(0),
            misses: Cell::new(0),
            store_failures: Cell::new(0),
            quarantined: Cell::new(0),
        })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Cache hits recorded by this handle.
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Cache misses recorded by this handle.
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }

    /// Entries this handle failed to store (warned once, then counted).
    pub fn store_failures(&self) -> u64 {
        self.store_failures.get()
    }

    /// Corrupt or key-mismatched entries this handle moved aside to
    /// `<entry>.bad`.
    pub fn quarantined(&self) -> u64 {
        self.quarantined.get()
    }

    fn entry_path(&self, spec: &RunSpec) -> PathBuf {
        self.dir.join(format!("{:016x}.metrics", spec.content_hash()))
    }

    /// Looks the spec up; a corrupt, truncated, or key-mismatched entry is
    /// reported as a miss. Such an entry is also *quarantined*: renamed to
    /// `<entry>.bad` (preserving the bytes for inspection) so repeated
    /// lookups of the same spec do not re-read and re-parse a file that
    /// can never hit, and so the next `put` recreates the entry cleanly.
    pub fn get(&self, spec: &RunSpec) -> Option<SystemMetrics> {
        let path = self.entry_path(spec);
        let loaded = match std::fs::read_to_string(&path) {
            Err(_) => None, // absent (or unreadable): a plain miss
            Ok(text) => {
                let parsed = parse_entry(&text, &spec.cache_key());
                if parsed.is_none() {
                    // Present but unusable: move it out of the lookup path.
                    if std::fs::rename(&path, path.with_extension("bad")).is_ok() {
                        self.quarantined.set(self.quarantined.get() + 1);
                    }
                }
                parsed
            }
        };
        match &loaded {
            Some(_) => self.hits.set(self.hits.get() + 1),
            None => self.misses.set(self.misses.get() + 1),
        }
        loaded
    }

    /// Stores a result. Best-effort: an I/O failure never fails the
    /// simulation that produced the metrics. The first failure per handle
    /// warns on stderr; subsequent ones are only counted
    /// ([`ResultsCache::store_failures`]) so a fully unwritable cache
    /// directory does not drown a campaign in identical warnings.
    pub fn put(&self, spec: &RunSpec, metrics: &SystemMetrics) {
        let body = render_entry(&spec.cache_key(), metrics);
        let path = self.entry_path(spec);
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        let result = std::fs::write(&tmp, body).and_then(|()| std::fs::rename(&tmp, &path));
        if let Err(e) = result {
            let _ = std::fs::remove_file(&tmp);
            if self.store_failures.get() == 0 {
                eprintln!(
                    "warning: could not store cache entry {}: {e} \
                     (further store failures will be counted, not repeated)",
                    path.display()
                );
            }
            self.store_failures.set(self.store_failures.get() + 1);
        }
    }
}

/// Renders a metrics entry: the versioned header, the canonical key, then
/// every metric field with floats as the hex of their IEEE-754 bits. Also
/// the bit-exact payload format of `crate::distribute` result frames and
/// the driver journal.
pub(crate) fn render_entry(key: &str, m: &SystemMetrics) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{FORMAT}");
    let _ = writeln!(s, "key {key}");
    let _ = writeln!(s, "active_cores {}", m.active_cores);
    let _ = writeln!(s, "cycles {}", m.cycles);
    let _ = writeln!(s, "instructions {}", m.instructions);
    let _ = writeln!(s, "fetch_stall_fraction {:016x}", m.fetch_stall_fraction.to_bits());
    let _ = write!(s, "per_core_ipc");
    for ipc in &m.per_core_ipc {
        let _ = write!(s, " {:016x}", ipc.to_bits());
    }
    s.push('\n');
    let _ = writeln!(
        s,
        "llc {} {} {} {} {} {}",
        m.llc.accesses,
        m.llc.hits,
        m.llc.misses,
        m.llc.snoops_sent,
        m.llc.snooping_accesses,
        m.llc.writebacks
    );
    let _ = writeln!(
        s,
        "net_counts {} {} {} {} {} {}",
        m.network.packets,
        m.network.p50_latency,
        m.network.p99_latency,
        m.network.buffer_writes,
        m.network.buffer_reads,
        m.network.xbar_traversals
    );
    let _ = writeln!(
        s,
        "net_lat {:016x} {:016x} {:016x} {:016x}",
        m.network.mean_latency.to_bits(),
        m.network.mean_request_latency.to_bits(),
        m.network.mean_response_latency.to_bits(),
        m.network.flit_mm.to_bits()
    );
    let _ = writeln!(s, "mem {} {}", m.memory.reads, m.memory.writes);
    let _ = writeln!(s, "ifetch_wait {}", m.ifetch_fill_wait_cycles);
    fn tail_line(s: &mut String, name: &str, t: &TailSummary) {
        let _ = writeln!(
            s,
            "{name} {} {:016x} {} {} {}",
            t.count,
            t.mean.to_bits(),
            t.p50,
            t.p99,
            t.p999
        );
    }
    tail_line(&mut s, "tail_block", &m.block_latency);
    tail_line(&mut s, "tail_fill", &m.fill_latency);
    tail_line(&mut s, "tail_llc_miss", &m.llc_miss_latency);
    tail_line(&mut s, "tail_request", &m.request_latency);
    tail_line(&mut s, "net_tail_request", &m.network.request_tail);
    tail_line(&mut s, "net_tail_snoop", &m.network.snoop_tail);
    tail_line(&mut s, "net_tail_response", &m.network.response_tail);
    s
}

/// Parses [`render_entry`] output, verifying the embedded key against
/// `expected_key`; any mismatch, truncation or malformed field is `None`.
pub(crate) fn parse_entry(text: &str, expected_key: &str) -> Option<SystemMetrics> {
    // Every writer (cache file, journal body, wire record) emits a
    // newline-terminated final line; text truncated mid-value on the last
    // line would otherwise still parse as a valid, wrong number.
    if !text.ends_with('\n') {
        return None;
    }
    let mut lines = text.lines();
    if lines.next()? != FORMAT {
        return None;
    }
    let key = lines.next()?.strip_prefix("key ")?;
    if key != expected_key {
        return None;
    }
    fn field<'a>(line: &'a str, name: &str) -> Option<&'a str> {
        line.strip_prefix(name)?.strip_prefix(' ')
    }
    fn ints(s: &str) -> Option<Vec<u64>> {
        s.split_whitespace()
            .map(|t| t.parse().ok())
            .collect::<Option<Vec<u64>>>()
    }
    fn floats(s: &str) -> Option<Vec<f64>> {
        s.split_whitespace()
            .map(|t| u64::from_str_radix(t, 16).ok().map(f64::from_bits))
            .collect::<Option<Vec<f64>>>()
    }
    let active_cores = field(lines.next()?, "active_cores")?.parse().ok()?;
    let cycles = field(lines.next()?, "cycles")?.parse().ok()?;
    let instructions = field(lines.next()?, "instructions")?.parse().ok()?;
    let fsf = floats(field(lines.next()?, "fetch_stall_fraction")?)?;
    let per_core_ipc = floats(lines.next()?.strip_prefix("per_core_ipc")?)?;
    let llc = ints(field(lines.next()?, "llc")?)?;
    let net_counts = ints(field(lines.next()?, "net_counts")?)?;
    let net_lat = floats(field(lines.next()?, "net_lat")?)?;
    let mem = ints(field(lines.next()?, "mem")?)?;
    let ifetch_wait: u64 = field(lines.next()?, "ifetch_wait")?.parse().ok()?;
    fn tail(s: &str) -> Option<TailSummary> {
        let mut it = s.split_whitespace();
        let count = it.next()?.parse().ok()?;
        let mean = f64::from_bits(u64::from_str_radix(it.next()?, 16).ok()?);
        let p50 = it.next()?.parse().ok()?;
        let p99 = it.next()?.parse().ok()?;
        let p999 = it.next()?.parse().ok()?;
        if it.next().is_some() {
            return None;
        }
        Some(TailSummary {
            count,
            mean,
            p50,
            p99,
            p999,
        })
    }
    let tail_block = tail(field(lines.next()?, "tail_block")?)?;
    let tail_fill = tail(field(lines.next()?, "tail_fill")?)?;
    let tail_llc_miss = tail(field(lines.next()?, "tail_llc_miss")?)?;
    let tail_request = tail(field(lines.next()?, "tail_request")?)?;
    let net_tail_request = tail(field(lines.next()?, "net_tail_request")?)?;
    let net_tail_snoop = tail(field(lines.next()?, "net_tail_snoop")?)?;
    let net_tail_response = tail(field(lines.next()?, "net_tail_response")?)?;
    if fsf.len() != 1 || llc.len() != 6 || net_counts.len() != 6 || net_lat.len() != 4 || mem.len() != 2
    {
        return None;
    }
    Some(SystemMetrics {
        per_core_ipc,
        active_cores,
        cycles,
        instructions,
        fetch_stall_fraction: fsf[0],
        llc: LlcSummary {
            accesses: llc[0],
            hits: llc[1],
            misses: llc[2],
            snoops_sent: llc[3],
            snooping_accesses: llc[4],
            writebacks: llc[5],
        },
        network: NetSummary {
            packets: net_counts[0],
            mean_latency: net_lat[0],
            mean_request_latency: net_lat[1],
            mean_response_latency: net_lat[2],
            p50_latency: net_counts[1],
            p99_latency: net_counts[2],
            flit_mm: net_lat[3],
            buffer_writes: net_counts[3],
            buffer_reads: net_counts[4],
            xbar_traversals: net_counts[5],
            request_tail: net_tail_request,
            snoop_tail: net_tail_snoop,
            response_tail: net_tail_response,
        },
        memory: MemSummary {
            reads: mem[0],
            writes: mem[1],
        },
        ifetch_fill_wait_cycles: ifetch_wait,
        block_latency: tail_block,
        fill_latency: tail_fill,
        llc_miss_latency: tail_llc_miss,
        request_latency: tail_request,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ChipConfig, Organization};
    use nocout_workloads::Workload;

    fn spec() -> RunSpec {
        RunSpec::new(
            ChipConfig::with_cores(Organization::Mesh, 16),
            Workload::WebSearch,
        )
        .fast()
    }

    fn metrics() -> SystemMetrics {
        SystemMetrics {
            per_core_ipc: vec![0.25, 0.0, 1.0 / 3.0],
            active_cores: 3,
            cycles: 10_000,
            instructions: 12_345,
            fetch_stall_fraction: 0.37,
            llc: LlcSummary {
                accesses: 9,
                hits: 7,
                misses: 2,
                snoops_sent: 1,
                snooping_accesses: 1,
                writebacks: 3,
            },
            network: NetSummary {
                packets: 42,
                mean_latency: 17.25,
                mean_request_latency: 13.5,
                mean_response_latency: 21.125,
                p50_latency: 16,
                p99_latency: 61,
                flit_mm: 1234.5678,
                buffer_writes: 5,
                buffer_reads: 6,
                xbar_traversals: 7,
                request_tail: TailSummary {
                    count: 30,
                    mean: 14.75,
                    p50: 14,
                    p99: 29,
                    p999: 31,
                },
                snoop_tail: TailSummary::default(),
                response_tail: TailSummary {
                    count: 12,
                    mean: 22.5,
                    p50: 21,
                    p99: 44,
                    p999: 47,
                },
            },
            memory: MemSummary {
                reads: 11,
                writes: 4,
            },
            ifetch_fill_wait_cycles: 321,
            block_latency: TailSummary {
                count: 19,
                mean: 130.0625,
                p50: 120,
                p99: 400,
                p999: 512,
            },
            fill_latency: TailSummary {
                count: 8,
                mean: 77.5,
                p50: 70,
                p99: 150,
                p999: 150,
            },
            llc_miss_latency: TailSummary {
                count: 2,
                mean: 90.0,
                p50: 88,
                p99: 92,
                p999: 92,
            },
            request_latency: TailSummary {
                count: 55,
                mean: 333.125,
                p50: 300,
                p99: 900,
                p999: 1024,
            },
        }
    }

    #[test]
    fn entry_round_trips_bit_exactly() {
        let m = metrics();
        let key = spec().cache_key();
        let parsed = parse_entry(&render_entry(&key, &m), &key).expect("parses");
        assert_eq!(parsed.active_cores, m.active_cores);
        assert_eq!(parsed.cycles, m.cycles);
        assert_eq!(parsed.instructions, m.instructions);
        assert_eq!(
            parsed.fetch_stall_fraction.to_bits(),
            m.fetch_stall_fraction.to_bits()
        );
        assert_eq!(parsed.per_core_ipc.len(), m.per_core_ipc.len());
        for (a, b) in parsed.per_core_ipc.iter().zip(&m.per_core_ipc) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(parsed.llc.accesses, m.llc.accesses);
        assert_eq!(parsed.llc.writebacks, m.llc.writebacks);
        assert_eq!(parsed.network.packets, m.network.packets);
        assert_eq!(parsed.network.flit_mm.to_bits(), m.network.flit_mm.to_bits());
        assert_eq!(parsed.network.p99_latency, m.network.p99_latency);
        assert_eq!(parsed.memory.reads, m.memory.reads);
        assert_eq!(parsed.ifetch_fill_wait_cycles, m.ifetch_fill_wait_cycles);
        assert_eq!(parsed.block_latency, m.block_latency);
        assert_eq!(parsed.fill_latency, m.fill_latency);
        assert_eq!(parsed.llc_miss_latency, m.llc_miss_latency);
        assert_eq!(parsed.request_latency, m.request_latency);
        assert_eq!(parsed.network.request_tail, m.network.request_tail);
        assert_eq!(parsed.network.snoop_tail, m.network.snoop_tail);
        assert_eq!(parsed.network.response_tail, m.network.response_tail);
    }

    #[test]
    fn key_mismatch_is_a_miss() {
        let m = metrics();
        let entry = render_entry(&spec().cache_key(), &m);
        let other = spec().with_seed(999).cache_key();
        assert!(parse_entry(&entry, &other).is_none());
    }

    #[test]
    fn truncated_entry_is_a_miss() {
        let key = spec().cache_key();
        let entry = render_entry(&key, &metrics());
        for cut in [0, 10, entry.len() / 2, entry.len() - 2] {
            assert!(parse_entry(&entry[..cut], &key).is_none(), "cut {cut}");
        }
    }

    #[test]
    fn every_spec_field_changes_the_key() {
        // One variant per RunSpec field — all ten ChipConfig fields, the
        // workload, both window lengths, and the seed. A cache_key()
        // refactor that drops any field fails here rather than silently
        // aliasing two configurations to one entry.
        let base = spec();
        let base_key = base.cache_key();
        let variants: Vec<(&str, RunSpec)> = vec![
            ("seed", base.clone().with_seed(2)),
            ("workload", {
                let mut v = base.clone();
                v.workload = Workload::SatSolver.into();
                v
            }),
            ("measure_cycles", {
                let mut v = base.clone();
                v.window.measure_cycles += 1;
                v
            }),
            ("warmup_cycles", {
                let mut v = base.clone();
                v.window.warmup_cycles += 1;
                v
            }),
            ("organization", {
                let mut v = base.clone();
                v.chip.organization = Organization::NocOut;
                v
            }),
            ("cores", {
                let mut v = base.clone();
                v.chip.cores = 64;
                v
            }),
            ("llc_total_bytes", {
                let mut v = base.clone();
                v.chip.llc_total_bytes *= 2;
                v
            }),
            ("link_width_bits", {
                let mut v = base.clone();
                v.chip.link_width_bits = 64;
                v
            }),
            ("mem_channels", {
                let mut v = base.clone();
                v.chip.mem_channels += 1;
                v
            }),
            ("banks_per_llc_tile", {
                let mut v = base.clone();
                v.chip.banks_per_llc_tile += 1;
                v
            }),
            ("concentration", {
                let mut v = base.clone();
                v.chip.concentration = 2;
                v
            }),
            ("active_core_override", {
                let mut v = base.clone();
                v.chip.active_core_override = Some(4);
                v
            }),
            ("express_links", {
                let mut v = base.clone();
                v.chip.express_links = true;
                v
            }),
            ("llc_rows", {
                let mut v = base.clone();
                v.chip.llc_rows = 2;
                v
            }),
        ];
        for (field, variant) in variants {
            assert_ne!(variant.cache_key(), base_key, "field {field}");
            assert_ne!(
                variant.content_hash(),
                base.content_hash(),
                "field {field}"
            );
        }
    }

    #[test]
    fn corrupt_entry_is_quarantined_not_reparsed() {
        let dir = std::env::temp_dir().join(format!(
            "nocout-cache-quarantine-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ResultsCache::open(&dir).unwrap();
        let s = spec();
        cache.put(&s, &metrics());
        assert!(cache.get(&s).is_some());

        // Corrupt the entry on disk: the lookup must miss, and the bytes
        // must move to `<entry>.bad` so the next lookup is a plain
        // missing-file miss instead of another parse of garbage.
        let path = cache.entry_path(&s);
        std::fs::write(&path, "not a cache entry").unwrap();
        assert!(cache.get(&s).is_none());
        assert_eq!(cache.quarantined(), 1);
        assert!(!path.exists());
        let bad = path.with_extension("bad");
        assert_eq!(std::fs::read_to_string(&bad).unwrap(), "not a cache entry");

        // Second lookup: still a miss, but nothing new to quarantine.
        assert!(cache.get(&s).is_none());
        assert_eq!(cache.quarantined(), 1);

        // A fresh put recreates the entry and lookups hit again.
        cache.put(&s, &metrics());
        assert!(cache.get(&s).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_failures_are_counted() {
        let dir = std::env::temp_dir().join(format!(
            "nocout-cache-storefail-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ResultsCache::open(&dir).unwrap();
        // Remove the directory out from under the handle: every store now
        // fails, and the handle counts each one (warning only once).
        std::fs::remove_dir_all(&dir).unwrap();
        cache.put(&spec(), &metrics());
        cache.put(&spec().with_seed(2), &metrics());
        assert_eq!(cache.store_failures(), 2);
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }
}
