//! Warmup + measurement run orchestration (the SimFlex-style methodology
//! of §5.4, minus the statistical sampling we replace with fixed windows
//! over deterministic seeds).

use crate::chip::ScaleOutChip;
use crate::config::ChipConfig;
use crate::metrics::SystemMetrics;
use nocout_sim::config::{MeasurementWindow, SeedSet};
use nocout_sim::stats::RunningStats;
use nocout_workloads::Workload;
use serde::{Deserialize, Serialize};

/// One simulation point: chip × workload × window × seed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunSpec {
    /// Chip configuration.
    pub chip: ChipConfig,
    /// Workload to run.
    pub workload: Workload,
    /// Warmup/measurement window.
    pub window: MeasurementWindow,
    /// Workload seed.
    pub seed: u64,
}

impl RunSpec {
    /// A paper-like run at the default window.
    pub fn new(chip: ChipConfig, workload: Workload) -> Self {
        RunSpec {
            chip,
            workload,
            window: MeasurementWindow::default(),
            seed: 1,
        }
    }

    /// Shortens the window for tests.
    pub fn fast(mut self) -> Self {
        self.window = MeasurementWindow::fast();
        self
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Executes one run: build, warm up, reset statistics, measure.
///
/// # Examples
///
/// ```
/// use nocout::config::{ChipConfig, Organization};
/// use nocout::runner::{run, RunSpec};
/// use nocout_workloads::Workload;
///
/// let spec = RunSpec::new(
///     ChipConfig::paper(Organization::NocOut),
///     Workload::WebSearch,
/// )
/// .fast();
/// let metrics = run(&spec);
/// assert!(metrics.aggregate_ipc() > 0.0);
/// ```
pub fn run(spec: &RunSpec) -> SystemMetrics {
    let mut chip = ScaleOutChip::new(spec.chip, spec.workload, spec.seed);
    for _ in 0..spec.window.warmup_cycles {
        chip.tick();
    }
    chip.reset_stats();
    for _ in 0..spec.window.measure_cycles {
        chip.tick();
    }
    chip.metrics()
}

/// Aggregate over a seed set: mean aggregate IPC with its 95% confidence
/// half-width, plus the last run's full metrics for detailed reporting.
#[derive(Debug, Clone)]
pub struct ReplicatedResult {
    /// Mean aggregate IPC across seeds.
    pub mean_ipc: f64,
    /// 95% confidence half-width of the mean.
    pub ci95: f64,
    /// Metrics of the final seed's run (for activity/latency detail).
    pub last: SystemMetrics,
}

/// Runs the spec once per seed and aggregates.
///
/// # Panics
///
/// Panics if `seeds` is empty.
pub fn run_replicated(spec: &RunSpec, seeds: &SeedSet) -> ReplicatedResult {
    assert!(!seeds.is_empty(), "need at least one seed");
    let mut stats = RunningStats::new();
    let mut last = None;
    for seed in seeds.iter() {
        let metrics = run(&spec.with_seed(seed));
        stats.record(metrics.aggregate_ipc());
        last = Some(metrics);
    }
    ReplicatedResult {
        mean_ipc: stats.mean(),
        ci95: stats.ci95_half_width(),
        last: last.expect("at least one seed ran"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Organization;

    #[test]
    fn run_produces_nonzero_ipc() {
        let spec = RunSpec::new(
            ChipConfig::with_cores(Organization::Mesh, 16),
            Workload::MapReduceC,
        )
        .fast();
        let m = run(&spec);
        assert!(m.aggregate_ipc() > 0.0);
        assert_eq!(m.cycles, spec.window.measure_cycles);
    }

    #[test]
    fn runs_are_deterministic() {
        let spec = RunSpec::new(
            ChipConfig::with_cores(Organization::NocOut, 64),
            Workload::SatSolver,
        )
        .fast();
        let a = run(&spec);
        let b = run(&spec);
        assert_eq!(a.instructions, b.instructions);
        assert_eq!(a.llc.accesses, b.llc.accesses);
        assert_eq!(a.network.packets, b.network.packets);
    }

    #[test]
    fn different_seeds_differ() {
        let spec = RunSpec::new(
            ChipConfig::with_cores(Organization::Mesh, 16),
            Workload::MapReduceW,
        )
        .fast();
        let a = run(&spec.with_seed(1));
        let b = run(&spec.with_seed(2));
        assert_ne!(a.instructions, b.instructions);
    }

    #[test]
    fn replication_reports_confidence() {
        let spec = RunSpec::new(
            ChipConfig::with_cores(Organization::Mesh, 16),
            Workload::WebFrontend,
        )
        .fast();
        let r = run_replicated(&spec, &nocout_sim::config::SeedSet::consecutive(1, 3));
        assert!(r.mean_ipc > 0.0);
        assert!(r.ci95 >= 0.0);
    }
}
