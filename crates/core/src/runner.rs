//! Warmup + measurement run orchestration (the SimFlex-style methodology
//! of §5.4, minus the statistical sampling we replace with fixed windows
//! over deterministic seeds).
//!
//! ## Serial and batch execution
//!
//! [`run`] executes a single [`RunSpec`]; [`run_replicated`] repeats it
//! over a seed set. Simulation points are fully independent (each builds
//! its own chip from its spec and seed), so experiment campaigns — the
//! chip × workload × seed grids behind every figure — parallelize
//! trivially. [`BatchRunner`] exploits that with a worker pool over OS
//! threads:
//!
//! * [`BatchRunner::run_batch`] executes a slice of specs and returns
//!   metrics **keyed by spec index**, bit-identical to running each spec
//!   through [`run`] serially (each point's determinism depends only on
//!   its spec and seed, never on scheduling),
//! * [`BatchRunner::run_replicated`] parallelizes across seeds while
//!   accumulating the replication statistics in seed order, so
//!   `mean_ipc`/`ci95` match the serial [`run_replicated`] exactly.
//!
//! Every experiment binary exposes the pool width as `--jobs N`
//! (`0`/unset = all hardware threads, honouring the `NOCOUT_JOBS`
//! environment variable as the default); see `nocout_experiments::cli`.
//!
//! ## Results cache
//!
//! Because every point is a pure function of its spec, results can be
//! memoized: [`BatchRunner::with_cache`] attaches a
//! [`crate::cache::ResultsCache`] and [`BatchRunner::run_batch`] /
//! [`BatchRunner::run_replicated`] then consult it before simulating,
//! storing whatever they had to compute. Every experiment binary exposes
//! this as `--cache DIR` (see `nocout_experiments::cli`), so re-running a
//! figure pays only for the points its previous run didn't cover.
//!
//! * **Key**: the FNV-1a 64 hash of [`RunSpec::cache_key`], a versioned
//!   canonical string spelling out every spec field — the full
//!   `ChipConfig` (organization, cores, LLC bytes, link width, memory
//!   channels, banks per tile, concentration, active-core override,
//!   express links, LLC rows), the workload, the warmup and measure
//!   cycle counts, and the seed.
//! * **Invalidation**: any change to any of those fields is a different
//!   key; there are no partial hits. The stored entry embeds the full
//!   key string and is verified on load, so collisions degrade to
//!   misses. Entries never expire on their own — delete the directory
//!   (or bump the key's behaviour version) after changing simulator
//!   behaviour.
//! * **Fidelity**: entries round-trip metrics bit-exactly (floats are
//!   stored as raw IEEE-754 bits), so hits are indistinguishable from
//!   re-simulation; the `results_cache` integration test and the CI
//!   byte-identity gate (`sweep --cache` twice, `cmp`) enforce this.
//!
//! ```
//! use nocout::config::{ChipConfig, Organization};
//! use nocout::runner::{run, BatchRunner, RunSpec};
//! use nocout_workloads::Workload;
//!
//! let specs: Vec<RunSpec> = [Workload::WebSearch, Workload::DataServing]
//!     .into_iter()
//!     .map(|w| RunSpec::new(ChipConfig::with_cores(Organization::Mesh, 16), w).fast())
//!     .collect();
//! let batch = BatchRunner::new(2).run_batch(&specs);
//! // Identical to the serial path, point for point.
//! assert_eq!(batch[0].instructions, run(&specs[0]).instructions);
//! ```

use crate::chip::ScaleOutChip;
use crate::config::ChipConfig;
use crate::metrics::SystemMetrics;
use nocout_sim::config::{MeasurementWindow, SeedSet};
use nocout_sim::stats::RunningStats;
use nocout_workloads::WorkloadClass;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A seed set was empty where at least one seed is required.
///
/// Replication folds (`run_replicated`, campaign execution) cannot produce
/// a result from zero runs; this error carries the actionable message the
/// old bare `expect(..)` panics lacked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EmptySeedSetError;

impl fmt::Display for EmptySeedSetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(
            "seed set is empty — replication needs at least one seed \
             (declare one with SeedSet::single(..) or Campaign::seeds([..]))",
        )
    }
}

impl std::error::Error for EmptySeedSetError {}

/// Why one simulation point failed to produce metrics.
///
/// Points are pure functions of their spec, so the only local failure
/// mode is a panic inside the simulator (a spec outside the model's
/// domain, an internal invariant trip). The distribution layer
/// (`crate::distribute`) adds transport failures on top — a shard
/// exhausted its retries — which also land here so one type describes
/// every way a point can be missing from a result set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PointError {
    /// The canonical `RunSpec::cache_key` of the point that failed.
    pub cache_key: String,
    /// Human-readable cause (panic payload or transport failure).
    pub message: String,
}

impl fmt::Display for PointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "point `{}` failed: {}", self.cache_key, self.message)
    }
}

impl std::error::Error for PointError {}

/// What executing one point produced: metrics, or an isolated failure.
pub type PointOutcome = Result<SystemMetrics, PointError>;

/// Renders a caught panic payload as text (`&str` and `String` payloads
/// verbatim, anything else generically).
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// [`run`] with per-point panic isolation: a panicking spec returns a
/// [`PointError`] naming the spec and the panic message instead of
/// unwinding into the caller (or, worse, tearing down a whole
/// [`BatchRunner`] scope and losing every other point of the batch).
pub fn run_outcome(spec: &RunSpec) -> PointOutcome {
    catch_unwind(AssertUnwindSafe(|| run(spec))).map_err(|payload| PointError {
        cache_key: spec.cache_key(),
        message: panic_message(payload),
    })
}

/// One simulation point: chip × workload class × window × seed.
///
/// The workload can be a synthetic profile or a captured trace
/// ([`WorkloadClass`]); cloning is cheap either way (traces are shared
/// by reference). Unlike its components, `RunSpec` itself does not
/// derive serde: a trace workload is backed by on-disk streams that a
/// field-wise serialization cannot capture — archive the canonical
/// [`RunSpec::cache_key`] (which embeds the trace content hash) instead.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSpec {
    /// Chip configuration.
    pub chip: ChipConfig,
    /// Workload class to run (synthetic profile or trace replay).
    pub workload: WorkloadClass,
    /// Warmup/measurement window.
    pub window: MeasurementWindow,
    /// Workload seed.
    pub seed: u64,
}

impl RunSpec {
    /// A paper-like run at the default window.
    pub fn new(chip: ChipConfig, workload: impl Into<WorkloadClass>) -> Self {
        RunSpec {
            chip,
            workload: workload.into(),
            window: MeasurementWindow::default(),
            seed: 1,
        }
    }

    /// Shortens the window for tests.
    pub fn fast(mut self) -> Self {
        self.window = MeasurementWindow::fast();
        self
    }

    /// Overrides the measurement window.
    pub fn with_window(mut self, window: MeasurementWindow) -> Self {
        self.window = window;
        self
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Executes one run: build, warm up, reset statistics, measure.
///
/// # Examples
///
/// ```
/// use nocout::config::{ChipConfig, Organization};
/// use nocout::runner::{run, RunSpec};
/// use nocout_workloads::Workload;
///
/// let spec = RunSpec::new(
///     ChipConfig::paper(Organization::NocOut),
///     Workload::WebSearch,
/// )
/// .fast();
/// let metrics = run(&spec);
/// assert!(metrics.aggregate_ipc() > 0.0);
/// ```
pub fn run(spec: &RunSpec) -> SystemMetrics {
    let mut chip = ScaleOutChip::new(spec.chip, spec.workload.clone(), spec.seed);
    // `run_for` fast-forwards through globally idle stretches while
    // remaining bit-identical to per-cycle ticking.
    chip.run_for(spec.window.warmup_cycles);
    chip.reset_stats();
    chip.run_for(spec.window.measure_cycles);
    chip.metrics()
}

/// Aggregate over a seed set: mean aggregate IPC with its 95% confidence
/// half-width, plus the last run's full metrics for detailed reporting.
#[derive(Debug, Clone)]
pub struct ReplicatedResult {
    /// Mean aggregate IPC across seeds.
    pub mean_ipc: f64,
    /// 95% confidence half-width of the mean.
    pub ci95: f64,
    /// Metrics of the final seed's run (for activity/latency detail).
    pub last: SystemMetrics,
}

/// Runs the spec once per seed and aggregates.
///
/// # Panics
///
/// Panics (with the [`EmptySeedSetError`] message) if `seeds` is empty;
/// use [`try_run_replicated`] to handle that as a value.
pub fn run_replicated(spec: &RunSpec, seeds: &SeedSet) -> ReplicatedResult {
    try_run_replicated(spec, seeds).unwrap_or_else(|e| panic!("{e}"))
}

/// [`run_replicated`] with the empty-seed-set case as a typed error.
pub fn try_run_replicated(
    spec: &RunSpec,
    seeds: &SeedSet,
) -> Result<ReplicatedResult, EmptySeedSetError> {
    let mut stats = RunningStats::new();
    let mut last = None;
    for seed in replication_seeds(spec, seeds)?.iter() {
        let metrics = run(&spec.clone().with_seed(seed));
        stats.record(metrics.aggregate_ipc());
        last = Some(metrics);
    }
    Ok(ReplicatedResult {
        mean_ipc: stats.mean(),
        ci95: stats.ci95_half_width(),
        // `replication_seeds` returned a non-empty set, so at least one
        // seed ran.
        last: last.ok_or(EmptySeedSetError)?,
    })
}

/// Seed-insensitive workloads ([`WorkloadClass::is_seed_sensitive`] —
/// trace replay is literal) collapse replication to the set's first
/// seed: running N identical simulations would produce bit-identical
/// statistics anyway (mean of N equal values is that value; the ci95
/// half-width is 0.0 at one sample and at zero variance alike), so one
/// run carries all the information. The campaign layers
/// (`run_replicated`, `BatchRunner`, `crate::campaign::Campaign`) all
/// route through this one rule.
///
/// # Errors
///
/// [`EmptySeedSetError`] if `seeds` is empty.
pub fn replication_seeds(
    spec: &RunSpec,
    seeds: &SeedSet,
) -> Result<SeedSet, EmptySeedSetError> {
    if spec.workload.is_seed_sensitive() {
        if seeds.is_empty() {
            return Err(EmptySeedSetError);
        }
        Ok(seeds.clone())
    } else {
        Ok(SeedSet::single(seeds.first().ok_or(EmptySeedSetError)?))
    }
}

/// A worker pool executing independent simulation points in parallel.
///
/// Results are keyed by spec index and bit-identical to the serial
/// [`run`]/[`run_replicated`] paths: every simulation point is
/// deterministic in its spec and seed alone, and the pool only changes
/// *when* points execute, never *what* they compute.
///
/// # Examples
///
/// ```
/// use nocout::config::{ChipConfig, Organization};
/// use nocout::runner::{BatchRunner, RunSpec};
/// use nocout_sim::config::SeedSet;
/// use nocout_workloads::Workload;
///
/// let spec = RunSpec::new(
///     ChipConfig::with_cores(Organization::Mesh, 16),
///     Workload::MapReduceC,
/// )
/// .fast();
/// let runner = BatchRunner::new(2);
/// let r = runner.run_replicated(&spec, &SeedSet::consecutive(1, 3));
/// assert!(r.mean_ipc > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct BatchRunner {
    jobs: usize,
    cache: Option<crate::cache::ResultsCache>,
}

impl Default for BatchRunner {
    /// A pool over all hardware threads.
    fn default() -> Self {
        BatchRunner::new(0)
    }
}

impl BatchRunner {
    /// Creates a pool of `jobs` workers; `0` means one worker per
    /// hardware thread.
    pub fn new(jobs: usize) -> Self {
        let jobs = if jobs == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            jobs
        };
        BatchRunner { jobs, cache: None }
    }

    /// A single-worker pool (runs everything on the calling thread).
    pub fn serial() -> Self {
        BatchRunner {
            jobs: 1,
            cache: None,
        }
    }

    /// Attaches a results cache: batches will consult it before
    /// simulating and store whatever they had to compute.
    pub fn with_cache(mut self, cache: crate::cache::ResultsCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// The attached results cache, if any (its hit/miss counters account
    /// for every lookup this runner performed).
    pub fn cache(&self) -> Option<&crate::cache::ResultsCache> {
        self.cache.as_ref()
    }

    /// Pool width from the `NOCOUT_JOBS` environment variable: unset (or
    /// `0`) means all hardware threads; a set-but-unparsable value also
    /// falls back to that, with a warning on stderr so a typo cannot
    /// silently change the worker count.
    pub fn from_env() -> Self {
        let jobs = match std::env::var("NOCOUT_JOBS") {
            Err(_) => 0,
            Ok(v) => v.parse().unwrap_or_else(|_| {
                eprintln!(
                    "warning: ignoring unparsable NOCOUT_JOBS=`{v}` \
                     (expected a count); using all hardware threads"
                );
                0
            }),
        };
        BatchRunner::new(jobs)
    }

    /// Number of worker threads this pool uses.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Executes every spec and returns their metrics keyed by spec index,
    /// identical to mapping [`run`] over the slice. With an attached
    /// cache, hits skip simulation entirely (entries round-trip
    /// bit-exactly) and only the misses go to the worker pool.
    ///
    /// # Panics
    ///
    /// Panics if any spec's simulation panics, naming the spec and the
    /// panic message. Use [`BatchRunner::run_batch_outcomes`] to isolate
    /// such failures per point instead.
    pub fn run_batch(&self, specs: &[RunSpec]) -> Vec<SystemMetrics> {
        self.run_batch_outcomes(specs)
            .into_iter()
            .map(|o| o.unwrap_or_else(|e| panic!("{e}")))
            .collect()
    }

    /// [`BatchRunner::run_batch`] with per-point panic isolation: a
    /// pathological spec fails *its own* point ([`PointError`]) while the
    /// rest of the batch completes — a panic no longer unwinds a pool
    /// thread (which, under `std::thread::scope`, would re-panic on scope
    /// exit and discard the whole batch). Successful points are cached
    /// exactly as in [`BatchRunner::run_batch`]; failed points are not.
    pub fn run_batch_outcomes(&self, specs: &[RunSpec]) -> Vec<PointOutcome> {
        let Some(cache) = &self.cache else {
            return self.run_batch_uncached(specs);
        };
        let mut out: Vec<Option<PointOutcome>> =
            specs.iter().map(|s| cache.get(s).map(Ok)).collect();
        let todo: Vec<usize> = (0..specs.len()).filter(|&i| out[i].is_none()).collect();
        let todo_specs: Vec<RunSpec> = todo.iter().map(|&i| specs[i].clone()).collect();
        let fresh = self.run_batch_uncached(&todo_specs);
        for (&i, o) in todo.iter().zip(fresh) {
            if let Ok(m) = &o {
                cache.put(&specs[i], m);
            }
            out[i] = Some(o);
        }
        out.into_iter()
            .map(|m| m.expect("every spec is cached or simulated"))
            .collect()
    }

    fn run_batch_uncached(&self, specs: &[RunSpec]) -> Vec<PointOutcome> {
        if self.jobs == 1 || specs.len() <= 1 {
            return specs.iter().map(run_outcome).collect();
        }
        let next = AtomicUsize::new(0);
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::scope(|scope| {
            for _ in 0..self.jobs.min(specs.len()) {
                let tx = tx.clone();
                let next = &next;
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= specs.len() {
                        break;
                    }
                    let outcome = run_outcome(&specs[i]);
                    if tx.send((i, outcome)).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
            let mut out: Vec<Option<PointOutcome>> =
                (0..specs.len()).map(|_| None).collect();
            for (i, outcome) in rx {
                out[i] = Some(outcome);
            }
            out.into_iter()
                .map(|m| m.expect("every spec produces an outcome"))
                .collect()
        })
    }

    /// Parallel [`run_replicated`]: seeds execute on the pool, but the
    /// replication statistics accumulate in seed order, so the result
    /// matches the serial path bit for bit.
    ///
    /// # Panics
    ///
    /// Panics (with the [`EmptySeedSetError`] message) if `seeds` is
    /// empty; use [`BatchRunner::try_run_replicated`] to handle that as a
    /// value.
    pub fn run_replicated(&self, spec: &RunSpec, seeds: &SeedSet) -> ReplicatedResult {
        self.try_run_replicated(spec, seeds)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`BatchRunner::run_replicated`] with the empty-seed-set case as a
    /// typed error.
    pub fn try_run_replicated(
        &self,
        spec: &RunSpec,
        seeds: &SeedSet,
    ) -> Result<ReplicatedResult, EmptySeedSetError> {
        let seeds = replication_seeds(spec, seeds)?;
        let specs: Vec<RunSpec> = seeds.iter().map(|s| spec.clone().with_seed(s)).collect();
        let all = self.run_batch(&specs);
        let mut stats = RunningStats::new();
        for m in &all {
            stats.record(m.aggregate_ipc());
        }
        Ok(ReplicatedResult {
            mean_ipc: stats.mean(),
            ci95: stats.ci95_half_width(),
            last: all.into_iter().last().ok_or(EmptySeedSetError)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Organization;
    use nocout_workloads::Workload;

    #[test]
    fn run_produces_nonzero_ipc() {
        let spec = RunSpec::new(
            ChipConfig::with_cores(Organization::Mesh, 16),
            Workload::MapReduceC,
        )
        .fast();
        let m = run(&spec);
        assert!(m.aggregate_ipc() > 0.0);
        assert_eq!(m.cycles, spec.window.measure_cycles);
    }

    #[test]
    fn runs_are_deterministic() {
        let spec = RunSpec::new(
            ChipConfig::with_cores(Organization::NocOut, 64),
            Workload::SatSolver,
        )
        .fast();
        let a = run(&spec);
        let b = run(&spec);
        assert_eq!(a.instructions, b.instructions);
        assert_eq!(a.llc.accesses, b.llc.accesses);
        assert_eq!(a.network.packets, b.network.packets);
    }

    #[test]
    fn different_seeds_differ() {
        let spec = RunSpec::new(
            ChipConfig::with_cores(Organization::Mesh, 16),
            Workload::MapReduceW,
        )
        .fast();
        let a = run(&spec.clone().with_seed(1));
        let b = run(&spec.with_seed(2));
        assert_ne!(a.instructions, b.instructions);
    }

    #[test]
    fn batch_matches_serial_per_spec() {
        let specs: Vec<RunSpec> = [Workload::MapReduceC, Workload::WebSearch]
            .into_iter()
            .map(|w| {
                RunSpec::new(ChipConfig::with_cores(Organization::Mesh, 16), w).fast()
            })
            .collect();
        let batch = BatchRunner::new(2).run_batch(&specs);
        for (spec, m) in specs.iter().zip(&batch) {
            let serial = run(spec);
            assert_eq!(m.instructions, serial.instructions);
            assert_eq!(m.network.packets, serial.network.packets);
        }
    }

    #[test]
    fn parallel_replication_matches_serial() {
        let spec = RunSpec::new(
            ChipConfig::with_cores(Organization::Mesh, 16),
            Workload::SatSolver,
        )
        .fast();
        let seeds = nocout_sim::config::SeedSet::consecutive(5, 3);
        let serial = run_replicated(&spec, &seeds);
        let parallel = BatchRunner::new(3).run_replicated(&spec, &seeds);
        assert_eq!(serial.mean_ipc.to_bits(), parallel.mean_ipc.to_bits());
        assert_eq!(serial.ci95.to_bits(), parallel.ci95.to_bits());
        assert_eq!(serial.last.instructions, parallel.last.instructions);
    }

    #[test]
    fn zero_jobs_means_hardware_threads() {
        assert!(BatchRunner::new(0).jobs() >= 1);
        assert_eq!(BatchRunner::serial().jobs(), 1);
    }

    /// A spec outside the model's domain: NOC-Out requires cores
    /// divisible across its column layout, so the chip constructor
    /// panics for 24 cores.
    fn poisoned_spec() -> RunSpec {
        RunSpec::new(
            ChipConfig::with_cores(Organization::NocOut, 24),
            Workload::WebSearch,
        )
        .fast()
    }

    #[test]
    fn empty_seed_set_is_a_typed_error() {
        let spec = RunSpec::new(
            ChipConfig::with_cores(Organization::Mesh, 16),
            Workload::WebSearch,
        )
        .fast();
        let empty: SeedSet = [].into_iter().collect();
        assert_eq!(
            try_run_replicated(&spec, &empty).unwrap_err(),
            EmptySeedSetError
        );
        assert_eq!(
            BatchRunner::serial()
                .try_run_replicated(&spec, &empty)
                .unwrap_err(),
            EmptySeedSetError
        );
        assert_eq!(replication_seeds(&spec, &empty).unwrap_err(), EmptySeedSetError);
        // The message is actionable, not a bare expect.
        assert!(EmptySeedSetError.to_string().contains("at least one seed"));
    }

    #[test]
    fn panicking_spec_yields_point_error() {
        let spec = poisoned_spec();
        let err = run_outcome(&spec).unwrap_err();
        assert_eq!(err.cache_key, spec.cache_key());
        assert!(err.message.contains("NOC-Out requires"), "{}", err.message);
    }

    #[test]
    fn batch_isolates_panicking_point() {
        let good = RunSpec::new(
            ChipConfig::with_cores(Organization::Mesh, 16),
            Workload::MapReduceC,
        )
        .fast();
        let specs = vec![good.clone(), poisoned_spec(), good.clone()];
        for jobs in [1, 2] {
            let outcomes = BatchRunner::new(jobs).run_batch_outcomes(&specs);
            assert_eq!(outcomes.len(), 3);
            let serial = run(&good);
            for i in [0, 2] {
                let m = outcomes[i].as_ref().expect("good point completes");
                assert_eq!(m.instructions, serial.instructions);
            }
            let err = outcomes[1].as_ref().unwrap_err();
            assert!(err.message.contains("NOC-Out requires"), "{}", err.message);
        }
    }

    #[test]
    fn replication_reports_confidence() {
        let spec = RunSpec::new(
            ChipConfig::with_cores(Organization::Mesh, 16),
            Workload::WebFrontend,
        )
        .fast();
        let r = run_replicated(&spec, &nocout_sim::config::SeedSet::consecutive(1, 3));
        assert!(r.mean_ipc > 0.0);
        assert!(r.ci95 >= 0.0);
    }
}
