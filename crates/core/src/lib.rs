//! # nocout — a reproduction of *NOC-Out: Microarchitecting a Scale-Out
//! Processor* (MICRO 2012)
//!
//! NOC-Out is a many-core chip organization for scale-out server
//! workloads: because traffic is almost entirely bilateral (cores ↔ shared
//! LLC, with negligible coherence), the design segregates LLC tiles into a
//! central row, connects each column of cores to its LLC tile through
//! routing-free **reduction trees** (cores → LLC) and **dispersion trees**
//! (LLC → cores), and links the LLC tiles with a small flattened
//! butterfly. The result matches a full flattened butterfly's performance
//! at roughly the area of a mesh.
//!
//! This crate binds the substrates (NoC, memory system, cores, workloads,
//! technology models) into the full-system model the evaluation needs:
//!
//! * [`config`] — the evaluated [`config::Organization`]s and Table 1
//!   parameters,
//! * [`chip`] — [`chip::ScaleOutChip`], the cycle-driven full system,
//! * [`runner`] — warmup/measure orchestration,
//! * [`campaign`] — declarative axis grids ([`campaign::Campaign`]) over
//!   the runner, returning coordinate-queryable
//!   [`campaign::ResultFrame`]s (what every experiment binary is built
//!   on; see `docs/campaign-api.md`),
//! * [`cache`] — the on-disk, spec-keyed results cache campaigns opt
//!   into with `--cache DIR`,
//! * [`distribute`] — fault-tolerant sharded campaign execution: the
//!   shard wire protocol, the `nocout-worker` serving side, the
//!   retrying/resuming driver, and the crash-safe journal (see
//!   `docs/distributed-campaigns.md`),
//! * [`metrics`] — what a run reports,
//! * [`sop`] — the Scale-Out Processor configuration methodology (§2.2).
//!
//! # Quickstart
//!
//! ```
//! use nocout::prelude::*;
//!
//! // Compare NOC-Out against the mesh baseline on a short window.
//! let mesh = run(&RunSpec::new(
//!     ChipConfig::paper(Organization::Mesh),
//!     Workload::WebSearch,
//! )
//! .fast());
//! let nocout = run(&RunSpec::new(
//!     ChipConfig::paper(Organization::NocOut),
//!     Workload::WebSearch,
//! )
//! .fast());
//! assert!(nocout.aggregate_ipc() > 0.0 && mesh.aggregate_ipc() > 0.0);
//! ```

pub mod cache;
pub mod campaign;
pub mod chip;
pub mod config;
pub mod distribute;
pub mod metrics;
pub mod runner;
pub mod sop;

pub use campaign::{Campaign, ResultFrame};
pub use chip::{capture_synthetic_trace, trace_capture_len, ScaleOutChip};
pub use config::{ChipConfig, Organization};
pub use metrics::SystemMetrics;
pub use runner::{run, run_replicated, RunSpec};

/// Convenient glob-import surface for examples and the harness.
pub mod prelude {
    pub use crate::campaign::{Campaign, ResultFrame};
    pub use crate::chip::{capture_synthetic_trace, trace_capture_len, ScaleOutChip};
    pub use crate::config::{ChipConfig, Organization};
    pub use crate::metrics::SystemMetrics;
    pub use crate::runner::{run, run_replicated, RunSpec};
    pub use nocout_sim::config::{MeasurementWindow, SeedSet};
    pub use nocout_workloads::{Workload, WorkloadClass};
}
