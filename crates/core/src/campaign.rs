//! Declarative experiment campaigns: typed axis grids over the runner.
//!
//! The paper's evaluation is a grid — organizations × workloads × link
//! widths × core counts × seeds — and before this module every experiment
//! binary hand-rolled its own point vector, flat-index arithmetic
//! (`results[i * orgs + j]`) and normalization loops on top of the batch
//! runner. [`Campaign`] makes the grid itself the first-class object:
//! declare the axes, execute through the existing [`BatchRunner`] (so
//! `--jobs` parallelism and the `--cache` results cache keep working
//! unchanged), and query the returned [`ResultFrame`] by coordinates
//! instead of by index.
//!
//! ```
//! use nocout::campaign::Campaign;
//! use nocout::config::Organization;
//! use nocout::runner::BatchRunner;
//! use nocout_sim::config::MeasurementWindow;
//! use nocout_workloads::Workload;
//!
//! let frame = Campaign::new()
//!     .orgs([Organization::Mesh, Organization::NocOut])
//!     .workloads([Workload::WebSearch, Workload::DataServing])
//!     .window(MeasurementWindow::fast())
//!     .run(&BatchRunner::serial());
//!
//! let norm = frame.normalize_to(Organization::Mesh);
//! let speedup = norm.get(Organization::NocOut, Workload::WebSearch);
//! assert!(speedup > 0.0);
//! assert!(norm.geomean(Organization::Mesh) == 1.0);
//! ```
//!
//! ## Canonical expansion order
//!
//! A campaign expands to points in one documented, *fixed* nesting order,
//! independent of the order the builder methods were called:
//!
//! 1. **configuration** (outermost) — the [`Campaign::orgs`] axis, or the
//!    explicit [`Campaign::variants`] axis,
//! 2. **cores** ([`Campaign::cores`]),
//! 3. **link width** ([`Campaign::link_bits`]),
//! 4. **workload** ([`Campaign::workloads`]),
//! 5. **seed** (innermost; [`Campaign::seeds`]).
//!
//! Within each axis the declared element order is preserved. Because the
//! nesting never depends on declaration order, the sequence of expanded
//! [`RunSpec`]s — and therefore the set of `RunSpec::cache_key`s a cached
//! campaign touches — is stable across refactors that merely reorder
//! builder calls (`tests/campaign.rs` pins this).
//!
//! ## Seeds and traces
//!
//! Each grid point replicates over the seed axis with the same collapsing
//! rule as every other campaign layer
//! ([`crate::runner::replication_seeds`]): seed-insensitive workloads —
//! trace replay is literal — run once per point regardless of the seed
//! axis. A `trace:PATH` workload class therefore composes with any grid:
//! it is just another element of the workload axis.

use crate::config::{ChipConfig, Organization};
use crate::metrics::{SystemMetrics, TailSummary};
use crate::runner::{BatchRunner, PointOutcome, RunSpec};
use nocout_sim::config::{MeasurementWindow, SeedSet};
use nocout_sim::stats::{geometric_mean, RunningStats};
use nocout_workloads::WorkloadClass;
use std::borrow::Cow;
use std::fmt::Write as _;

/// A declarative grid of simulation points: typed axes over a base
/// configuration, executed as one batch through a [`BatchRunner`].
///
/// See the [module docs](self) for the canonical expansion order.
#[derive(Debug, Clone)]
pub struct Campaign {
    base: ChipConfig,
    orgs: Option<Vec<Organization>>,
    variants: Option<Vec<(String, ChipConfig)>>,
    cores: Option<Vec<usize>>,
    link_bits: Option<Vec<u32>>,
    workloads: Vec<WorkloadClass>,
    seeds: SeedSet,
    window: MeasurementWindow,
}

impl Default for Campaign {
    fn default() -> Self {
        Campaign::new()
    }
}

impl Campaign {
    /// An empty campaign over the paper's Table 1 mesh baseline: no axes
    /// declared yet, a single seed, the default measurement window.
    pub fn new() -> Self {
        Campaign {
            base: ChipConfig::paper(Organization::Mesh),
            orgs: None,
            variants: None,
            cores: None,
            link_bits: None,
            workloads: Vec::new(),
            seeds: SeedSet::single(1),
            window: MeasurementWindow::default(),
        }
    }

    /// Sets the base configuration every derived point starts from; axes
    /// override individual fields on top of it. Also the single point of
    /// the configuration axis when [`Campaign::orgs`] /
    /// [`Campaign::variants`] are not declared.
    pub fn fixed(mut self, cfg: ChipConfig) -> Self {
        self.base = cfg;
        self
    }

    /// Declares the organization axis: one configuration per organization,
    /// derived from the base by swapping `organization`.
    ///
    /// # Panics
    ///
    /// Panics if [`Campaign::variants`] was also declared — the two are
    /// alternative spellings of the configuration axis.
    pub fn orgs(mut self, orgs: impl IntoIterator<Item = Organization>) -> Self {
        assert!(
            self.variants.is_none(),
            "a campaign's configuration axis is either orgs(..) or variants(..), not both"
        );
        self.orgs = Some(orgs.into_iter().collect());
        self
    }

    /// Declares an explicit configuration axis: labelled, fully-formed
    /// [`ChipConfig`]s for grids the typed axes cannot derive (fig9's
    /// per-organization link widths, the concentration/express ablations).
    /// Query results back by label ([`Sel::label`]) or by any chip field.
    ///
    /// # Panics
    ///
    /// Panics if [`Campaign::orgs`] was also declared.
    pub fn variants<L: Into<String>>(
        mut self,
        variants: impl IntoIterator<Item = (L, ChipConfig)>,
    ) -> Self {
        assert!(
            self.orgs.is_none(),
            "a campaign's configuration axis is either orgs(..) or variants(..), not both"
        );
        self.variants = Some(
            variants
                .into_iter()
                .map(|(l, c)| (l.into(), c))
                .collect(),
        );
        self
    }

    /// Declares the core-count axis (overrides `chip.cores`).
    pub fn cores(mut self, cores: impl IntoIterator<Item = usize>) -> Self {
        self.cores = Some(cores.into_iter().collect());
        self
    }

    /// Declares the link-width axis in bits (overrides
    /// `chip.link_width_bits`).
    pub fn link_bits(mut self, bits: impl IntoIterator<Item = u32>) -> Self {
        self.link_bits = Some(bits.into_iter().collect());
        self
    }

    /// Declares the workload axis. Synthetic profiles and `trace:PATH`
    /// classes mix freely ([`WorkloadClass`]).
    pub fn workloads<W: Into<WorkloadClass>>(
        mut self,
        workloads: impl IntoIterator<Item = W>,
    ) -> Self {
        self.workloads = workloads.into_iter().map(Into::into).collect();
        self
    }

    /// Declares the seed axis (innermost). Seed-insensitive points (trace
    /// replay) collapse to the first seed at execution time.
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Sets the warmup/measurement window shared by every point.
    pub fn window(mut self, window: MeasurementWindow) -> Self {
        self.window = window;
        self
    }

    /// Expands the declared axes into grid points in the canonical order
    /// (see the [module docs](self)). The seed axis is not part of the
    /// point list — it replicates each point at execution time.
    ///
    /// # Panics
    ///
    /// Panics if no workload was declared.
    pub fn expand(&self) -> Vec<CampaignPoint> {
        assert!(
            !self.workloads.is_empty(),
            "campaign declares no workloads — call .workloads(..) before expanding"
        );
        let configs: Vec<(Option<String>, ChipConfig)> = match (&self.variants, &self.orgs) {
            (Some(vs), _) => vs
                .iter()
                .map(|(l, c)| (Some(l.clone()), *c))
                .collect(),
            (None, Some(orgs)) => orgs
                .iter()
                .map(|&o| {
                    let mut c = self.base;
                    c.organization = o;
                    (None, c)
                })
                .collect(),
            (None, None) => vec![(None, self.base)],
        };
        let cores: &[usize] = self.cores.as_deref().unwrap_or(&[]);
        let link_bits: &[u32] = self.link_bits.as_deref().unwrap_or(&[]);
        let mut points = Vec::new();
        for (ci, (label, cfg)) in configs.iter().enumerate() {
            for (ni, cores_v) in iter_or_unit(cores) {
                for (li, bits_v) in iter_or_unit(link_bits) {
                    let mut chip = *cfg;
                    if let Some(n) = cores_v {
                        chip.cores = n;
                    }
                    if let Some(b) = bits_v {
                        chip.link_width_bits = b;
                    }
                    for (wi, workload) in self.workloads.iter().enumerate() {
                        points.push(CampaignPoint {
                            label: label.clone(),
                            chip,
                            workload: workload.clone(),
                            coord: Coord {
                                config: ci,
                                cores: ni,
                                links: li,
                                workload: wi,
                            },
                        });
                    }
                }
            }
        }
        points
    }

    /// The full expansion down to individual [`RunSpec`]s, in execution
    /// order: the canonical point order with the (collapsed) seed axis
    /// innermost. This is exactly what [`Campaign::run`] submits to the
    /// runner — both build the same [`Campaign::plan`] — and what tests
    /// use to pin cache-key coverage.
    pub fn specs(&self) -> Vec<RunSpec> {
        self.plan().1
    }

    /// The single execution plan: expanded points, the flat spec
    /// sequence, and how many consecutive specs belong to each point.
    /// [`Campaign::specs`] and [`Campaign::run`] both derive from this,
    /// so the published spec sequence cannot drift from what actually
    /// executes.
    fn plan(&self) -> (Vec<CampaignPoint>, Vec<RunSpec>, Vec<usize>) {
        let points = self.expand();
        let mut specs = Vec::new();
        let mut per_point_runs = Vec::with_capacity(points.len());
        for p in &points {
            let before = specs.len();
            specs.extend(self.point_seeds(p).map(|seed| RunSpec {
                chip: p.chip,
                workload: p.workload.clone(),
                window: self.window,
                seed,
            }));
            per_point_runs.push(specs.len() - before);
        }
        (points, specs, per_point_runs)
    }

    /// The seeds a single point actually runs: the declared seed axis for
    /// seed-sensitive workloads, its first element otherwise (the shared
    /// collapsing rule of [`crate::runner::replication_seeds`]).
    fn point_seeds<'a>(&'a self, point: &CampaignPoint) -> impl Iterator<Item = u64> + 'a {
        let runs = if point.workload.is_seed_sensitive() {
            self.seeds.len()
        } else {
            1
        };
        self.seeds.iter().take(runs)
    }

    /// Executes the whole grid as one batch on `runner` — every point ×
    /// seed in a single [`BatchRunner::run_batch_outcomes`] call, so a
    /// figure's full grid parallelizes across `--jobs` workers and
    /// memoizes through `--cache`, exactly as the hand-rolled point
    /// vectors did — and folds the per-seed results into a queryable
    /// [`ResultFrame`].
    ///
    /// Per point, replication statistics accumulate in seed order: the
    /// frame's `ipc`/`ci95`/`metrics` are bit-identical to serial
    /// [`crate::runner::run_replicated`] calls, at any worker count.
    ///
    /// Failure is per point, not per campaign: a spec whose simulation
    /// panics lands in the frame's failed-point set
    /// ([`ResultFrame::failed`]) while every other point completes.
    ///
    /// # Panics
    ///
    /// Panics if no workload was declared or the seed axis is empty.
    pub fn run(&self, runner: &BatchRunner) -> ResultFrame {
        self.run_on(runner)
    }

    /// [`Campaign::run`] over any [`CampaignExecutor`] — the local
    /// [`BatchRunner`] pool or the sharded multi-process driver
    /// ([`crate::distribute::ShardedDriver`]). Executors are required to
    /// be bit-identical for successful points, so the folded frame does
    /// not depend on where the points ran.
    ///
    /// # Panics
    ///
    /// Panics if no workload was declared or the seed axis is empty.
    pub fn run_on<E: CampaignExecutor + ?Sized>(&self, exec: &E) -> ResultFrame {
        assert!(!self.seeds.is_empty(), "campaign needs at least one seed");
        let (points, specs, per_point_runs) = self.plan();
        let all = exec.execute(&specs);
        let mut off = 0;
        let mut results = Vec::new();
        let mut failed = Vec::new();
        for (p, runs) in points.into_iter().zip(per_point_runs) {
            let per_seed = &all[off..off + runs];
            let seeds: Vec<u64> = specs[off..off + runs].iter().map(|s| s.seed).collect();
            off += runs;
            // A point is its replication fold; if any seed failed the
            // fold would misrepresent the declared seed axis, so the
            // whole point degrades into the failed set (successful seeds
            // stay memoized in the cache for the retry).
            if let Some((i, err)) = per_seed
                .iter()
                .enumerate()
                .find_map(|(i, o)| o.as_ref().err().map(|e| (i, e)))
            {
                failed.push(FailedPoint {
                    label: p.label,
                    chip: p.chip,
                    workload: p.workload,
                    seed: seeds[i],
                    error: err.message.clone(),
                });
                continue;
            }
            let mut stats = RunningStats::new();
            let mut last = None;
            for m in per_seed.iter().map(|o| o.as_ref().expect("checked above")) {
                stats.record(m.aggregate_ipc());
                last = Some(m);
            }
            results.push(PointResult {
                label: p.label,
                chip: p.chip,
                workload: p.workload,
                seeds_run: runs,
                ipc: stats.mean(),
                ci95: stats.ci95_half_width(),
                metrics: last.expect("non-empty replication").clone(),
                coord: p.coord,
            });
        }
        ResultFrame {
            workloads: self.workloads.clone(),
            points: results,
            failed,
        }
    }
}

/// Anything that can execute a campaign's spec sequence: the local
/// [`BatchRunner`] pool, or the multi-process sharded driver
/// ([`crate::distribute::ShardedDriver`]). Implementations must return
/// exactly one outcome per spec, in spec order, and successful outcomes
/// must be bit-identical to [`crate::runner::run`] on the same spec —
/// the executor chooses *where and when* points run, never *what* they
/// compute.
pub trait CampaignExecutor {
    /// Executes every spec, returning outcomes keyed by spec index.
    fn execute(&self, specs: &[RunSpec]) -> Vec<PointOutcome>;
}

impl CampaignExecutor for BatchRunner {
    fn execute(&self, specs: &[RunSpec]) -> Vec<PointOutcome> {
        self.run_batch_outcomes(specs)
    }
}

/// `axis` as an indexed override axis: a single no-override coordinate
/// when the axis is not declared.
fn iter_or_unit<T: Copy>(axis: &[T]) -> Box<dyn Iterator<Item = (usize, Option<T>)> + '_> {
    if axis.is_empty() {
        Box::new(std::iter::once((0, None)))
    } else {
        Box::new(axis.iter().enumerate().map(|(i, &v)| (i, Some(v))))
    }
}

/// Canonical axis coordinates of one grid point (indices into the
/// declared axes; undeclared axes contribute a constant 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Coord {
    config: usize,
    cores: usize,
    links: usize,
    workload: usize,
}

impl Coord {
    /// Same position on every axis except the configuration axis — the
    /// grouping normalization uses to find each point's baseline.
    fn same_cell(&self, other: &Coord) -> bool {
        self.cores == other.cores
            && self.links == other.links
            && self.workload == other.workload
    }
}

/// One expanded (but not yet executed) grid point.
#[derive(Debug, Clone)]
pub struct CampaignPoint {
    /// Variant label when the configuration axis is explicit.
    pub label: Option<String>,
    /// The fully-derived chip configuration.
    pub chip: ChipConfig,
    /// The workload class at this point.
    pub workload: WorkloadClass,
    coord: Coord,
}

/// One measured grid point: its coordinates plus the replicated result.
#[derive(Debug, Clone)]
pub struct PointResult {
    /// Variant label when the configuration axis is explicit.
    pub label: Option<String>,
    /// The chip configuration that ran.
    pub chip: ChipConfig,
    /// The workload class that ran.
    pub workload: WorkloadClass,
    /// Seed replications actually performed (1 for seed-insensitive
    /// workloads regardless of the seed axis).
    pub seeds_run: usize,
    /// Mean aggregate IPC across seeds.
    pub ipc: f64,
    /// 95% confidence half-width of the mean.
    pub ci95: f64,
    /// Full metrics of the last seed (activity, latencies, LLC stats).
    pub metrics: SystemMetrics,
    coord: Coord,
}

impl PointResult {
    fn describe(&self) -> String {
        let mut s = format!("{} / {}", self.chip.organization, self.workload);
        if let Some(l) = &self.label {
            s = format!("[{l}] {s}");
        }
        let _ = write!(
            s,
            " / {} cores / {}-bit links",
            self.chip.cores, self.chip.link_width_bits
        );
        s
    }
}

/// One grid point that failed to produce metrics: its coordinates plus
/// the failure cause. Lives on [`ResultFrame::failed`] so a partially
/// failed campaign degrades into an explicit, queryable failure set
/// instead of an aborted run.
#[derive(Debug, Clone)]
pub struct FailedPoint {
    /// Variant label when the configuration axis is explicit.
    pub label: Option<String>,
    /// The chip configuration of the failed point.
    pub chip: ChipConfig,
    /// The workload class of the failed point.
    pub workload: WorkloadClass,
    /// The first seed whose run failed.
    pub seed: u64,
    /// The failure cause (panic message or transport failure).
    pub error: String,
}

impl std::fmt::Display for FailedPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.describe())
    }
}

impl FailedPoint {
    fn describe(&self) -> String {
        let mut s = format!("{} / {}", self.chip.organization, self.workload);
        if let Some(l) = &self.label {
            s = format!("[{l}] {s}");
        }
        let _ = write!(
            s,
            " / {} cores / {}-bit links / seed {}: {}",
            self.chip.cores, self.chip.link_width_bits, self.seed, self.error
        );
        s
    }
}

/// Results of a campaign, keyed by their axis coordinates.
///
/// Points are stored in the canonical expansion order
/// ([`ResultFrame::results`]); the query helpers ([`ResultFrame::get`],
/// [`ResultFrame::at`], [`ResultFrame::normalize_to`]) replace the
/// flat-index arithmetic the experiment binaries used to hand-roll.
/// Points whose execution failed are carried separately
/// ([`ResultFrame::failed`]): queries that land on one panic naming the
/// failure instead of reporting a hole in the grid.
#[derive(Debug, Clone)]
pub struct ResultFrame {
    workloads: Vec<WorkloadClass>,
    points: Vec<PointResult>,
    failed: Vec<FailedPoint>,
}

impl ResultFrame {
    /// Every point in canonical expansion order.
    pub fn results(&self) -> &[PointResult] {
        &self.points
    }

    /// Every point that failed to execute, in canonical expansion order.
    /// Empty on a fully successful campaign.
    pub fn failed(&self) -> &[FailedPoint] {
        &self.failed
    }

    /// Whether every declared point produced metrics.
    pub fn is_complete(&self) -> bool {
        self.failed.is_empty()
    }

    /// Number of grid points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the frame holds no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The workload axis, in declared order.
    pub fn workloads(&self) -> &[WorkloadClass] {
        &self.workloads
    }

    /// Starts a coordinate query; chain axis filters and finish with
    /// [`Sel::one`], [`Sel::ipc`] or [`Sel::iter`].
    pub fn at(&self) -> Sel<'_> {
        Sel {
            frame: self,
            org: None,
            workload: None,
            cores: None,
            link_bits: None,
            label: None,
        }
    }

    /// The unique point at (organization, workload) — the common query of
    /// the figure binaries.
    ///
    /// # Panics
    ///
    /// Panics if no point or more than one point matches (e.g. a multi-
    /// width sweep needs [`ResultFrame::at`] with
    /// [`Sel::link_bits`] too).
    pub fn get(
        &self,
        org: Organization,
        workload: impl Into<WorkloadClass>,
    ) -> &PointResult {
        self.at().org(org).workload(workload).one()
    }

    /// Normalizes every point's mean IPC to the point of `baseline`'s
    /// organization in the same grid cell (same cores / link-width /
    /// workload coordinates). The paper's "normalized to mesh" figures
    /// are exactly this with `baseline = Organization::Mesh`.
    ///
    /// # Panics
    ///
    /// Panics if some cell has no unique baseline point.
    pub fn normalize_to(&self, baseline: Organization) -> NormalizedFrame {
        let values = self
            .points
            .iter()
            .map(|p| {
                let mut base = self
                    .points
                    .iter()
                    .filter(|b| b.chip.organization == baseline && b.coord.same_cell(&p.coord));
                let b = base.next().unwrap_or_else(|| {
                    panic!(
                        "normalize_to({baseline}): no {baseline} point shares a cell with {}",
                        p.describe()
                    )
                });
                assert!(
                    base.next().is_none(),
                    "normalize_to({baseline}): several {baseline} points share a cell with {}",
                    p.describe()
                );
                p.ipc / b.ipc
            })
            .collect();
        NormalizedFrame {
            baseline,
            frame: self.clone(),
            values,
        }
    }

    /// The frame as printable records: a header row naming the declared
    /// axes, then one row per point in canonical order.
    pub fn to_records(&self) -> Vec<Vec<String>> {
        let labelled = self.points.iter().any(|p| p.label.is_some());
        let mut header = Vec::new();
        if labelled {
            header.push("Variant".to_string());
        }
        header.extend(
            ["Organization", "Cores", "LinkBits", "Workload", "Seeds", "IPC", "CI95"]
                .map(String::from),
        );
        let mut records = vec![header];
        for p in &self.points {
            let mut row = Vec::new();
            if labelled {
                row.push(p.label.clone().unwrap_or_default());
            }
            row.extend([
                p.chip.organization.to_string(),
                p.chip.cores.to_string(),
                p.chip.link_width_bits.to_string(),
                p.workload.to_string(),
                p.seeds_run.to_string(),
                format!("{:.6}", p.ipc),
                format!("{:.6}", p.ci95),
            ]);
            records.push(row);
        }
        records
    }

    /// The frame rendered as CSV (fields escaped by [`csv_render`]).
    pub fn to_csv(&self) -> String {
        csv_render(&self.to_records())
    }

    /// The service-level view of the frame: one row per point with the
    /// tail-latency summaries of the point's last seed. Kept separate
    /// from [`ResultFrame::to_records`] so the legacy CSV (and the
    /// golden files CI compares it against) stays byte-identical.
    ///
    /// Percentiles come from [`LatencyHist`](nocout_sim::stats::LatencyHist)
    /// buckets, so each is exact-to-33/32-above; counts and means are
    /// exact.
    pub fn tail_records(&self) -> Vec<Vec<String>> {
        let labelled = self.points.iter().any(|p| p.label.is_some());
        let mut header = Vec::new();
        if labelled {
            header.push("Variant".to_string());
        }
        header.extend(
            [
                "Organization",
                "Cores",
                "LinkBits",
                "Workload",
                "ReqCount",
                "ReqP50",
                "ReqP99",
                "ReqP999",
                "BlockP99",
                "FillP99",
                "LlcMissP99",
                "NetRespP99",
            ]
            .map(String::from),
        );
        let mut records = vec![header];
        for p in &self.points {
            let m = &p.metrics;
            let mut row = Vec::new();
            if labelled {
                row.push(p.label.clone().unwrap_or_default());
            }
            row.extend([
                p.chip.organization.to_string(),
                p.chip.cores.to_string(),
                p.chip.link_width_bits.to_string(),
                p.workload.to_string(),
                m.request_latency.count.to_string(),
                m.request_latency.p50.to_string(),
                m.request_latency.p99.to_string(),
                m.request_latency.p999.to_string(),
                m.block_latency.p99.to_string(),
                m.fill_latency.p99.to_string(),
                m.llc_miss_latency.p99.to_string(),
                m.network.response_tail.p99.to_string(),
            ]);
            records.push(row);
        }
        records
    }

    /// [`ResultFrame::tail_records`] rendered as CSV.
    pub fn tail_csv(&self) -> String {
        csv_render(&self.tail_records())
    }
}

/// A coordinate query over a [`ResultFrame`]: every declared filter must
/// match. Undeclared filters match everything.
#[derive(Debug, Clone)]
pub struct Sel<'f> {
    frame: &'f ResultFrame,
    org: Option<Organization>,
    workload: Option<WorkloadClass>,
    cores: Option<usize>,
    link_bits: Option<u32>,
    label: Option<String>,
}

impl<'f> Sel<'f> {
    /// Filters on the chip's organization.
    pub fn org(mut self, org: Organization) -> Self {
        self.org = Some(org);
        self
    }

    /// Filters on the workload class (synthetic profile or trace).
    pub fn workload(mut self, workload: impl Into<WorkloadClass>) -> Self {
        self.workload = Some(workload.into());
        self
    }

    /// Filters on the chip's core count.
    pub fn cores(mut self, cores: usize) -> Self {
        self.cores = Some(cores);
        self
    }

    /// Filters on the chip's link width.
    pub fn link_bits(mut self, bits: u32) -> Self {
        self.link_bits = Some(bits);
        self
    }

    /// Filters on the variant label (explicit configuration axis).
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    fn matches_parts(
        &self,
        chip: &ChipConfig,
        workload: &WorkloadClass,
        label: Option<&str>,
    ) -> bool {
        self.org.is_none_or(|o| chip.organization == o)
            && self.cores.is_none_or(|n| chip.cores == n)
            && self.link_bits.is_none_or(|b| chip.link_width_bits == b)
            && self.workload.as_ref().is_none_or(|w| *workload == *w)
            && self
                .label
                .as_ref()
                .is_none_or(|l| label == Some(l.as_str()))
    }

    fn matches(&self, p: &PointResult) -> bool {
        self.matches_parts(&p.chip, &p.workload, p.label.as_deref())
    }

    /// Failed points this query would have matched — what turns a silent
    /// "no point matches" into a named failure.
    fn matching_failures(&self) -> Vec<&'f FailedPoint> {
        self.frame
            .failed
            .iter()
            .filter(|f| self.matches_parts(&f.chip, &f.workload, f.label.as_deref()))
            .collect()
    }

    fn describe(&self) -> String {
        let mut parts = Vec::new();
        if let Some(l) = &self.label {
            parts.push(format!("label={l}"));
        }
        if let Some(o) = self.org {
            parts.push(format!("org={o}"));
        }
        if let Some(n) = self.cores {
            parts.push(format!("cores={n}"));
        }
        if let Some(b) = self.link_bits {
            parts.push(format!("link_bits={b}"));
        }
        if let Some(w) = &self.workload {
            parts.push(format!("workload={w}"));
        }
        if parts.is_empty() {
            "<unfiltered>".to_string()
        } else {
            parts.join(" ")
        }
    }

    /// Every matching point, in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = &'f PointResult> + '_ {
        self.frame.points.iter().filter(move |p| self.matches(p))
    }

    /// The single matching point.
    ///
    /// # Panics
    ///
    /// Panics — naming the query — if no point or more than one point
    /// matches. When a point the query would have matched is in the
    /// frame's failed set, the message names that point and its failure
    /// cause instead of claiming the point does not exist.
    pub fn one(&self) -> &'f PointResult {
        let mut it = self.iter();
        let first = it.next().unwrap_or_else(|| {
            let failures = self.matching_failures();
            if let Some(f) = failures.first() {
                panic!(
                    "campaign point matching {} failed to execute ({} matching \
                     failure{}): {}",
                    self.describe(),
                    failures.len(),
                    if failures.len() == 1 { "" } else { "s" },
                    f.describe()
                );
            }
            panic!("no campaign point matches {}", self.describe())
        });
        if let Some(second) = it.next() {
            panic!(
                "query {} is ambiguous: matches {} and {}{}",
                self.describe(),
                first.describe(),
                second.describe(),
                if it.next().is_some() { " (and more)" } else { "" }
            );
        }
        first
    }

    /// Mean IPC of the single matching point.
    ///
    /// # Panics
    ///
    /// Panics if the match is not unique.
    pub fn ipc(&self) -> f64 {
        self.one().ipc
    }

    /// Open-loop service-latency summary (arrival to completion) of the
    /// single matching point; all-zero for closed-loop workloads.
    ///
    /// # Panics
    ///
    /// Panics if the match is not unique.
    pub fn request_tail(&self) -> TailSummary {
        self.one().metrics.request_latency
    }

    /// p99 of [`Sel::request_tail`] — the load-vs-tail-latency y axis.
    ///
    /// # Panics
    ///
    /// Panics if the match is not unique.
    pub fn request_p99(&self) -> u64 {
        self.one().metrics.request_latency.p99
    }
}

/// A [`ResultFrame`] view with every point's mean IPC divided by its
/// cell's baseline-organization point (see
/// [`ResultFrame::normalize_to`]).
#[derive(Debug, Clone)]
pub struct NormalizedFrame {
    baseline: Organization,
    frame: ResultFrame,
    /// Normalized value per point, parallel to `frame.points`.
    values: Vec<f64>,
}

impl NormalizedFrame {
    /// The baseline organization (whose points are all exactly 1.0).
    pub fn baseline(&self) -> Organization {
        self.baseline
    }

    /// Normalized value of the unique (organization, workload) point.
    ///
    /// # Panics
    ///
    /// Panics if the match is not unique.
    pub fn get(&self, org: Organization, workload: impl Into<WorkloadClass>) -> f64 {
        let sel = self.frame.at().org(org).workload(workload);
        let matches: Vec<usize> = self
            .frame
            .points
            .iter()
            .enumerate()
            .filter(|(_, p)| sel.matches(p))
            .map(|(i, _)| i)
            .collect();
        match matches.as_slice() {
            [i] => self.values[*i],
            [] => {
                if let Some(f) = sel.matching_failures().first() {
                    panic!(
                        "campaign point matching {} failed to execute: {}",
                        sel.describe(),
                        f.describe()
                    );
                }
                panic!("no campaign point matches {}", sel.describe())
            }
            _ => panic!("query {} is ambiguous", sel.describe()),
        }
    }

    /// `org`'s normalized values across the workload axis, in declared
    /// workload order — the per-workload series of a Fig. 7-style bar
    /// group.
    ///
    /// # Panics
    ///
    /// Panics if the frame holds more than one point per (org, workload)
    /// — normalize a single sweep slice at a time.
    pub fn series(&self, org: Organization) -> Vec<f64> {
        self.frame
            .workloads
            .iter()
            .map(|w| self.get(org, w.clone()))
            .collect()
    }

    /// Geometric mean of `org`'s normalized values over the workload axis
    /// — the figures' "GMean" aggregate.
    pub fn geomean(&self, org: Organization) -> f64 {
        geometric_mean(&self.series(org))
    }
}

/// Escapes one CSV field (RFC 4180): fields containing commas, quotes or
/// line breaks are double-quoted, with embedded quotes doubled. This is
/// the *one* escaping path — `nocout_experiments::write_csv` and
/// [`ResultFrame::to_csv`] both render through [`csv_render`].
pub fn csv_escape(field: &str) -> Cow<'_, str> {
    if field.contains([',', '"', '\n', '\r']) {
        Cow::Owned(format!("\"{}\"", field.replace('"', "\"\"")))
    } else {
        Cow::Borrowed(field)
    }
}

/// Renders records as CSV text, escaping every field through
/// [`csv_escape`].
pub fn csv_render(records: &[Vec<String>]) -> String {
    let mut out = String::new();
    for rec in records {
        let mut first = true;
        for field in rec {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&csv_escape(field));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nocout_workloads::Workload;

    fn fast_campaign() -> Campaign {
        Campaign::new()
            .orgs([Organization::Mesh, Organization::NocOut])
            .workloads([Workload::WebSearch, Workload::MapReduceC])
            .window(MeasurementWindow::fast())
    }

    #[test]
    fn expansion_follows_canonical_nesting() {
        let c = Campaign::new()
            .workloads([Workload::WebSearch, Workload::MapReduceC])
            .orgs([Organization::Mesh, Organization::NocOut])
            .cores([16, 64]);
        let points = c.expand();
        assert_eq!(points.len(), 8);
        // Config outermost, then cores, workload innermost.
        assert_eq!(points[0].chip.organization, Organization::Mesh);
        assert_eq!(points[0].chip.cores, 16);
        assert_eq!(points[0].workload, Workload::WebSearch.into());
        assert_eq!(points[1].workload, Workload::MapReduceC.into());
        assert_eq!(points[2].chip.cores, 64);
        assert_eq!(points[4].chip.organization, Organization::NocOut);
    }

    #[test]
    fn declaration_order_does_not_change_expansion() {
        let a = Campaign::new()
            .orgs([Organization::Mesh, Organization::NocOut])
            .cores([16, 64])
            .workloads([Workload::WebSearch]);
        let b = Campaign::new()
            .workloads([Workload::WebSearch])
            .cores([16, 64])
            .orgs([Organization::Mesh, Organization::NocOut]);
        let keys = |c: &Campaign| -> Vec<String> {
            c.specs().iter().map(|s| s.cache_key()).collect()
        };
        assert_eq!(keys(&a), keys(&b));
    }

    #[test]
    fn undeclared_axes_fall_back_to_the_base() {
        let base = ChipConfig::paper(Organization::FlattenedButterfly);
        let points = Campaign::new()
            .fixed(base)
            .workloads([Workload::SatSolver])
            .expand();
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].chip, base);
        assert!(points[0].label.is_none());
    }

    #[test]
    fn variants_carry_labels_and_full_configs() {
        let mut narrow = ChipConfig::paper(Organization::Mesh);
        narrow.link_width_bits = 32;
        let points = Campaign::new()
            .variants([("narrow mesh", narrow), ("nocout", ChipConfig::paper(Organization::NocOut))])
            .workloads([Workload::WebSearch])
            .expand();
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].label.as_deref(), Some("narrow mesh"));
        assert_eq!(points[0].chip.link_width_bits, 32);
        assert_eq!(points[1].chip.organization, Organization::NocOut);
    }

    #[test]
    #[should_panic(expected = "not both")]
    fn orgs_and_variants_are_mutually_exclusive() {
        let _ = Campaign::new()
            .orgs([Organization::Mesh])
            .variants([("x", ChipConfig::paper(Organization::NocOut))]);
    }

    #[test]
    #[should_panic(expected = "no workloads")]
    fn expanding_without_workloads_panics() {
        let _ = Campaign::new().orgs([Organization::Mesh]).expand();
    }

    #[test]
    fn seed_axis_replicates_sensitive_points_only() {
        let c = Campaign::new()
            .workloads([Workload::WebSearch])
            .seeds([1, 2, 3]);
        assert_eq!(c.specs().len(), 3);
        assert_eq!(
            c.specs().iter().map(|s| s.seed).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn frame_queries_and_normalization() {
        let frame = fast_campaign().run(&BatchRunner::serial());
        assert_eq!(frame.len(), 4);
        let mesh = frame.get(Organization::Mesh, Workload::WebSearch);
        assert!(mesh.ipc > 0.0);
        assert_eq!(mesh.chip.organization, Organization::Mesh);
        let norm = frame.normalize_to(Organization::Mesh);
        assert_eq!(norm.get(Organization::Mesh, Workload::WebSearch), 1.0);
        let expected = frame.get(Organization::NocOut, Workload::WebSearch).ipc
            / frame.get(Organization::Mesh, Workload::WebSearch).ipc;
        assert_eq!(
            norm.get(Organization::NocOut, Workload::WebSearch).to_bits(),
            expected.to_bits()
        );
        // geomean over the two workloads matches the direct computation.
        let series = norm.series(Organization::NocOut);
        assert_eq!(series.len(), 2);
        assert_eq!(
            norm.geomean(Organization::NocOut).to_bits(),
            geometric_mean(&series).to_bits()
        );
        assert_eq!(norm.geomean(Organization::Mesh), 1.0);
    }

    #[test]
    #[should_panic(expected = "no campaign point matches")]
    fn missing_point_panics_with_query() {
        let frame = fast_campaign().run(&BatchRunner::serial());
        let _ = frame.get(Organization::IdealWire, Workload::WebSearch);
    }

    #[test]
    #[should_panic(expected = "ambiguous")]
    fn ambiguous_query_panics() {
        let frame = fast_campaign().run(&BatchRunner::serial());
        let _ = frame.at().org(Organization::Mesh).one();
    }

    #[test]
    fn frame_matches_replicated_serial_path() {
        let c = Campaign::new()
            .workloads([Workload::MapReduceW])
            .seeds([1, 2])
            .window(MeasurementWindow::fast());
        let frame = c.run(&BatchRunner::serial());
        let spec = RunSpec {
            chip: ChipConfig::paper(Organization::Mesh),
            workload: Workload::MapReduceW.into(),
            window: MeasurementWindow::fast(),
            seed: 1,
        };
        let r = crate::runner::run_replicated(&spec, &SeedSet::consecutive(1, 2));
        let p = &frame.results()[0];
        assert_eq!(p.ipc.to_bits(), r.mean_ipc.to_bits());
        assert_eq!(p.ci95.to_bits(), r.ci95.to_bits());
        assert_eq!(p.metrics.instructions, r.last.instructions);
        assert_eq!(p.seeds_run, 2);
    }

    #[test]
    fn failed_point_degrades_into_failed_set() {
        // One poisoned variant (NOC-Out at 24 cores trips the chip
        // constructor) among good ones: the campaign completes, the good
        // points fold normally, and the poisoned point lands in the
        // failed set with its cause.
        let frame = Campaign::new()
            .variants([
                ("good mesh", ChipConfig::with_cores(Organization::Mesh, 16)),
                ("poisoned", ChipConfig::with_cores(Organization::NocOut, 24)),
            ])
            .workloads([Workload::WebSearch])
            .window(MeasurementWindow::fast())
            .run(&BatchRunner::serial());
        assert_eq!(frame.len(), 1);
        assert!(!frame.is_complete());
        assert_eq!(frame.failed().len(), 1);
        let f = &frame.failed()[0];
        assert_eq!(f.label.as_deref(), Some("poisoned"));
        assert!(f.error.contains("NOC-Out requires"), "{}", f.error);
        assert!(frame.at().label("good mesh").one().ipc > 0.0);
    }

    #[test]
    fn query_on_failed_point_names_the_failure() {
        let frame = Campaign::new()
            .variants([
                ("good mesh", ChipConfig::with_cores(Organization::Mesh, 16)),
                ("poisoned", ChipConfig::with_cores(Organization::NocOut, 24)),
            ])
            .workloads([Workload::WebSearch])
            .window(MeasurementWindow::fast())
            .run(&BatchRunner::serial());
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            frame.at().label("poisoned").one()
        }))
        .unwrap_err();
        let msg = err
            .downcast_ref::<String>()
            .expect("panic carries a message")
            .clone();
        assert!(msg.contains("failed to execute"), "{msg}");
        assert!(msg.contains("NOC-Out requires"), "{msg}");
    }

    #[test]
    fn records_and_csv_render() {
        let frame = fast_campaign().run(&BatchRunner::serial());
        let records = frame.to_records();
        assert_eq!(records.len(), 1 + frame.len());
        assert_eq!(records[0][0], "Organization");
        let csv = frame.to_csv();
        assert!(csv.starts_with("Organization,Cores,"));
        assert_eq!(csv.lines().count(), 1 + frame.len());
    }

    #[test]
    fn csv_escaping_rules() {
        assert_eq!(csv_escape("plain"), "plain");
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(csv_escape("two\nlines"), "\"two\nlines\"");
        let rendered = csv_render(&[vec!["a,b".into(), "c".into()]]);
        assert_eq!(rendered, "\"a,b\",c\n");
    }
}
