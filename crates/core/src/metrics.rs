//! System-level metrics collected over a measurement window.

use nocout_tech::energy::NocActivity;
use serde::{Deserialize, Serialize};

/// Everything the experiment harness reads out of a run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SystemMetrics {
    /// Instructions per cycle of every core (inactive cores report 0).
    pub per_core_ipc: Vec<f64>,
    /// Number of cores that ran the workload.
    pub active_cores: usize,
    /// Measured cycles.
    pub cycles: u64,
    /// Total instructions retired across active cores.
    pub instructions: u64,
    /// Fraction of core cycles stalled on instruction fetch.
    pub fetch_stall_fraction: f64,
    /// LLC behaviour.
    pub llc: LlcSummary,
    /// Interconnect behaviour.
    pub network: NetSummary,
    /// Memory-channel behaviour.
    pub memory: MemSummary,
}

impl SystemMetrics {
    /// The paper's performance metric: application instructions per total
    /// cycle, aggregated over the chip.
    pub fn aggregate_ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Mean per-active-core IPC (Fig. 1's per-core performance).
    pub fn per_core_performance(&self) -> f64 {
        if self.active_cores == 0 {
            0.0
        } else {
            self.aggregate_ipc() / self.active_cores as f64
        }
    }

    /// Network activity in the shape the energy model consumes.
    pub fn noc_activity(&self) -> NocActivity {
        NocActivity {
            flit_mm: self.network.flit_mm,
            buffer_writes: self.network.buffer_writes,
            buffer_reads: self.network.buffer_reads,
            xbar_traversals: self.network.xbar_traversals,
            cycles: self.cycles,
        }
    }
}

/// Aggregated LLC statistics (summed over tiles).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct LlcSummary {
    /// Core requests processed.
    pub accesses: u64,
    /// Serviced from the LLC or by owner forwarding.
    pub hits: u64,
    /// Fetched from memory.
    pub misses: u64,
    /// Snoop messages sent.
    pub snoops_sent: u64,
    /// Core requests that triggered at least one snoop (Fig. 4 numerator).
    pub snooping_accesses: u64,
    /// Writebacks received.
    pub writebacks: u64,
}

impl LlcSummary {
    /// Percentage of LLC accesses that triggered a snoop (Fig. 4).
    pub fn snoop_percent(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            100.0 * self.snooping_accesses as f64 / self.accesses as f64
        }
    }

    /// LLC hit ratio.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Interconnect statistics for the window.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct NetSummary {
    /// Packets delivered.
    pub packets: u64,
    /// Mean end-to-end packet latency in cycles.
    pub mean_latency: f64,
    /// Mean request-class latency.
    pub mean_request_latency: f64,
    /// Mean response-class latency.
    pub mean_response_latency: f64,
    /// Median end-to-end packet latency (cycles).
    pub p50_latency: u64,
    /// 99th-percentile end-to-end packet latency (cycles) — where the
    /// Fig. 9 serialization spike shows first.
    pub p99_latency: u64,
    /// Flit·mm of link traversal (energy input).
    pub flit_mm: f64,
    /// Buffer writes.
    pub buffer_writes: u64,
    /// Buffer reads.
    pub buffer_reads: u64,
    /// Crossbar traversals.
    pub xbar_traversals: u64,
}

/// Memory-channel statistics for the window.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct MemSummary {
    /// Line reads serviced.
    pub reads: u64,
    /// Line writes serviced.
    pub writes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics() -> SystemMetrics {
        SystemMetrics {
            per_core_ipc: vec![0.5; 4],
            active_cores: 4,
            cycles: 1000,
            instructions: 2000,
            fetch_stall_fraction: 0.3,
            llc: LlcSummary {
                accesses: 100,
                hits: 80,
                misses: 20,
                snoops_sent: 2,
                snooping_accesses: 2,
                writebacks: 5,
            },
            network: NetSummary::default(),
            memory: MemSummary::default(),
        }
    }

    #[test]
    fn aggregate_ipc() {
        assert!((metrics().aggregate_ipc() - 2.0).abs() < 1e-12);
        assert!((metrics().per_core_performance() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn snoop_percent() {
        assert!((metrics().llc.snoop_percent() - 2.0).abs() < 1e-12);
        assert!((metrics().llc.hit_ratio() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn activity_round_trip() {
        let a = metrics().noc_activity();
        assert_eq!(a.cycles, 1000);
    }
}
