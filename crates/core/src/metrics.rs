//! System-level metrics collected over a measurement window.

use nocout_sim::stats::LatencyHist;
use nocout_tech::energy::NocActivity;
use serde::{Deserialize, Serialize};

/// The service-level summary of one latency distribution: sample count,
/// mean, and the tail percentiles scale-out serving is judged by.
///
/// Built from a [`LatencyHist`], so the percentiles inherit its 1/32
/// relative error bound (never below the exact quantile, at most 33/32
/// above it). Percentiles do **not** compose across summaries — merge the
/// underlying histograms first, then summarize ([`TailSummary::of`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TailSummary {
    /// Samples recorded.
    pub count: u64,
    /// Mean latency in cycles.
    pub mean: f64,
    /// Median (cycles).
    pub p50: u64,
    /// 99th percentile (cycles).
    pub p99: u64,
    /// 99.9th percentile (cycles).
    pub p999: u64,
}

impl TailSummary {
    /// Summarizes a histogram.
    pub fn of(h: &LatencyHist) -> Self {
        TailSummary {
            count: h.total(),
            mean: h.mean(),
            p50: h.percentile(0.5),
            p99: h.percentile(0.99),
            p999: h.percentile(0.999),
        }
    }
}

/// Everything the experiment harness reads out of a run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SystemMetrics {
    /// Instructions per cycle of every core (inactive cores report 0).
    pub per_core_ipc: Vec<f64>,
    /// Number of cores that ran the workload.
    pub active_cores: usize,
    /// Measured cycles.
    pub cycles: u64,
    /// Total instructions retired across active cores.
    pub instructions: u64,
    /// Fraction of core cycles stalled on instruction fetch.
    pub fetch_stall_fraction: f64,
    /// LLC behaviour.
    pub llc: LlcSummary,
    /// Interconnect behaviour.
    pub network: NetSummary,
    /// Memory-channel behaviour.
    pub memory: MemSummary,
    /// Total cycles fetch engines spent waiting for L1-I fills (summed
    /// over active cores; the first per-request counter, PR 5).
    pub ifetch_fill_wait_cycles: u64,
    /// Fetch-to-retire latency per 64-instruction block, merged over
    /// active cores.
    pub block_latency: TailSummary,
    /// End-to-end L1 miss-to-fill latency (core request leaving the chip
    /// model to the data packet dispatching back into the core).
    pub fill_latency: TailSummary,
    /// LLC miss-to-fill latency per memory-bound MSHR, merged over tiles.
    pub llc_miss_latency: TailSummary,
    /// End-to-end service latency of open-loop requests (arrival to
    /// completion, including queueing delay); all-zero for closed-loop
    /// workloads.
    pub request_latency: TailSummary,
}

impl SystemMetrics {
    /// The paper's performance metric: application instructions per total
    /// cycle, aggregated over the chip.
    pub fn aggregate_ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Mean per-active-core IPC (Fig. 1's per-core performance).
    pub fn per_core_performance(&self) -> f64 {
        if self.active_cores == 0 {
            0.0
        } else {
            self.aggregate_ipc() / self.active_cores as f64
        }
    }

    /// Network activity in the shape the energy model consumes.
    pub fn noc_activity(&self) -> NocActivity {
        NocActivity {
            flit_mm: self.network.flit_mm,
            buffer_writes: self.network.buffer_writes,
            buffer_reads: self.network.buffer_reads,
            xbar_traversals: self.network.xbar_traversals,
            cycles: self.cycles,
        }
    }
}

/// Aggregated LLC statistics (summed over tiles).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct LlcSummary {
    /// Core requests processed.
    pub accesses: u64,
    /// Serviced from the LLC or by owner forwarding.
    pub hits: u64,
    /// Fetched from memory.
    pub misses: u64,
    /// Snoop messages sent.
    pub snoops_sent: u64,
    /// Core requests that triggered at least one snoop (Fig. 4 numerator).
    pub snooping_accesses: u64,
    /// Writebacks received.
    pub writebacks: u64,
}

impl LlcSummary {
    /// Percentage of LLC accesses that triggered a snoop (Fig. 4).
    pub fn snoop_percent(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            100.0 * self.snooping_accesses as f64 / self.accesses as f64
        }
    }

    /// LLC hit ratio.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Interconnect statistics for the window.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct NetSummary {
    /// Packets delivered.
    pub packets: u64,
    /// Mean end-to-end packet latency in cycles.
    pub mean_latency: f64,
    /// Mean request-class latency.
    pub mean_request_latency: f64,
    /// Mean response-class latency.
    pub mean_response_latency: f64,
    /// Median end-to-end packet latency (cycles).
    pub p50_latency: u64,
    /// 99th-percentile end-to-end packet latency (cycles) — where the
    /// Fig. 9 serialization spike shows first.
    pub p99_latency: u64,
    /// Flit·mm of link traversal (energy input).
    pub flit_mm: f64,
    /// Buffer writes.
    pub buffer_writes: u64,
    /// Buffer reads.
    pub buffer_reads: u64,
    /// Crossbar traversals.
    pub xbar_traversals: u64,
    /// Request-class packet latency distribution (GetS/GetX).
    pub request_tail: TailSummary,
    /// Snoop-class packet latency distribution.
    pub snoop_tail: TailSummary,
    /// Response-class packet latency distribution (data/acks) — the
    /// class whose serialization latency the paper's Fig. 9 argument
    /// rests on.
    pub response_tail: TailSummary,
}

/// Memory-channel statistics for the window.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct MemSummary {
    /// Line reads serviced.
    pub reads: u64,
    /// Line writes serviced.
    pub writes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics() -> SystemMetrics {
        SystemMetrics {
            per_core_ipc: vec![0.5; 4],
            active_cores: 4,
            cycles: 1000,
            instructions: 2000,
            fetch_stall_fraction: 0.3,
            llc: LlcSummary {
                accesses: 100,
                hits: 80,
                misses: 20,
                snoops_sent: 2,
                snooping_accesses: 2,
                writebacks: 5,
            },
            network: NetSummary::default(),
            memory: MemSummary::default(),
            ifetch_fill_wait_cycles: 0,
            block_latency: TailSummary::default(),
            fill_latency: TailSummary::default(),
            llc_miss_latency: TailSummary::default(),
            request_latency: TailSummary::default(),
        }
    }

    #[test]
    fn tail_summary_of_histogram() {
        let mut h = LatencyHist::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let t = TailSummary::of(&h);
        assert_eq!(t.count, 1000);
        assert!(t.p50 <= t.p99 && t.p99 <= t.p999);
        assert!(t.p99 >= 990 && t.p999 >= 999);
        assert!((t.mean - 500.5).abs() < 1e-9);
    }

    #[test]
    fn aggregate_ipc() {
        assert!((metrics().aggregate_ipc() - 2.0).abs() < 1e-12);
        assert!((metrics().per_core_performance() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn snoop_percent() {
        assert!((metrics().llc.snoop_percent() - 2.0).abs() < 1e-12);
        assert!((metrics().llc.hit_ratio() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn activity_round_trip() {
        let a = metrics().noc_activity();
        assert_eq!(a.cycles, 1000);
    }
}
