//! The full-system chip model: cores + L1s + LLC tiles + directory +
//! memory channels, bound together by an interconnect fabric.
//!
//! This is the piece that corresponds to the paper's Flexus full-system
//! timing simulation (§5.4): every protocol message physically traverses
//! the configured NoC, LLC banks arbitrate among requests, memory channels
//! queue, and cores stall exactly as their fills come back.

use crate::config::{ChipConfig, Organization};
use crate::metrics::{LlcSummary, MemSummary, NetSummary, SystemMetrics, TailSummary};
use nocout_cpu::{Core, CoreConfig, CoreIdle, MissRequest};
use nocout_mem::addr::{Addr, AddressMap};
use nocout_mem::llc::{LlcConfig, LlcInput, LlcOutput, LlcTile};
use nocout_mem::mem_ctrl::{MemChannelConfig, MemRequest, MemoryChannel};
use nocout_mem::protocol::{AccessKind, CoreId, Msg, MsgSlab, TxnId};
use nocout_noc::fabric::{Fabric, NextEvent};
use nocout_noc::latency::LatencyFabric;
use nocout_noc::topology::ideal::{build_analytic, AnalyticKind, AnalyticSpec};
use nocout_noc::topology::{fbfly::build_fbfly, mesh::build_mesh, nocout::build_nocout};
use nocout_noc::types::{MessageClass, TerminalId};
use nocout_cpu::source::{FetchedInstr, InstrBlock, InstructionSource};
use nocout_sim::stats::LatencyHist;
use nocout_sim::Cycle;
use nocout_workloads::trace::{TraceHeader, TraceSet, TraceSource, TraceWriter, TRACE_SUFFIX};
use nocout_workloads::{OpenLoopSource, Workload, WorkloadClass, WorkloadGen};
use std::sync::Arc;

/// What an organization's topology builder hands back: the fabric plus
/// the terminal ids for cores, LLC tiles and memory channels, and the
/// preferred core-activation order.
type BuiltFabric = (
    Box<dyn Fabric>,
    Vec<TerminalId>,
    Vec<TerminalId>,
    Vec<TerminalId>,
    Vec<usize>,
);

/// The instruction stream driving one active core: a synthetic generator
/// or a trace replay, behind one enum so the chip's hot path stays free
/// of per-workload-class branching (the core consumes blocks; the class
/// distinction surfaces only at refill).
#[derive(Debug)]
enum CoreSource {
    Synthetic(WorkloadGen),
    Trace(TraceSource),
    OpenLoop(OpenLoopSource),
}

impl InstructionSource for CoreSource {
    fn next_instr(&mut self) -> FetchedInstr {
        match self {
            CoreSource::Synthetic(g) => g.next_instr(),
            CoreSource::Trace(t) => t.next_instr(),
            CoreSource::OpenLoop(o) => o.next_instr(),
        }
    }

    fn refill(&mut self, block: &mut InstrBlock) {
        match self {
            CoreSource::Synthetic(g) => g.refill(block),
            CoreSource::Trace(t) => t.refill(block),
            CoreSource::OpenLoop(o) => o.refill(block),
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct TermInfo {
    core: Option<usize>,
    llc: Option<usize>,
    mem: Option<usize>,
}

/// Membership bitmap (plus population count) of components with pending
/// work. The chip's per-cycle scans visit only members, in index order —
/// on a 64-tile chip most LLC tiles and memory channels are idle most
/// cycles, so calling into all of them was the dominant cost of the
/// tile/channel steps (mirroring what `Fabric::take_ready_terminal`
/// already does for delivery). A bitmap beats a sorted worklist here:
/// membership updates are branch-cheap, iteration order matches the
/// full-scan reference by construction, and when nothing is active the
/// whole step is one counter test.
#[derive(Debug, Default)]
struct ActiveSet {
    member: Vec<bool>,
    count: usize,
}

impl ActiveSet {
    fn with_len(n: usize) -> Self {
        ActiveSet {
            member: vec![false; n],
            count: 0,
        }
    }

    #[inline]
    fn insert(&mut self, i: usize) {
        if !self.member[i] {
            self.member[i] = true;
            self.count += 1;
        }
    }

    /// Records the component's post-tick state.
    #[inline]
    fn set(&mut self, i: usize, active: bool) {
        if self.member[i] != active {
            self.member[i] = active;
            if active {
                self.count += 1;
            } else {
                self.count -= 1;
            }
        }
    }

    #[inline]
    fn is_empty(&self) -> bool {
        self.count == 0
    }
}

#[derive(Debug)]
struct TxnTable {
    entries: Vec<Option<(u16, Addr, AccessKind, Cycle)>>,
    free: Vec<u32>,
}

impl TxnTable {
    fn new() -> Self {
        TxnTable {
            entries: Vec::new(),
            free: Vec::new(),
        }
    }

    fn alloc(&mut self, core: u16, line: Addr, kind: AccessKind, born: Cycle) -> TxnId {
        if let Some(i) = self.free.pop() {
            self.entries[i as usize] = Some((core, line, kind, born));
            TxnId(i)
        } else {
            self.entries.push(Some((core, line, kind, born)));
            TxnId((self.entries.len() - 1) as u32)
        }
    }

    fn release(&mut self, txn: TxnId) -> (u16, Addr, AccessKind, Cycle) {
        let rec = self.entries[txn.0 as usize]
            .take()
            .expect("transaction must be live");
        self.free.push(txn.0);
        rec
    }

    fn live(&self) -> usize {
        self.entries.len() - self.free.len()
    }
}

/// The simulated chip.
///
/// # Examples
///
/// Run a few thousand cycles of Web Search on NOC-Out:
///
/// ```
/// use nocout::chip::ScaleOutChip;
/// use nocout::config::{ChipConfig, Organization};
/// use nocout_workloads::Workload;
///
/// let mut chip = ScaleOutChip::new(
///     ChipConfig::paper(Organization::NocOut),
///     Workload::WebSearch,
///     42,
/// );
/// for _ in 0..2000 {
///     chip.tick();
/// }
/// assert!(chip.metrics().instructions > 0);
/// ```
pub struct ScaleOutChip {
    cfg: ChipConfig,
    fabric: Box<dyn Fabric>,
    cores: Vec<Core>,
    /// (core index, its instruction stream) for every active core.
    active: Vec<(usize, CoreSource)>,
    llcs: Vec<LlcTile>,
    channels: Vec<MemoryChannel>,
    msgs: MsgSlab,
    txns: TxnTable,
    map: AddressMap,
    core_term: Vec<TerminalId>,
    llc_term: Vec<TerminalId>,
    mc_term: Vec<TerminalId>,
    term_info: Vec<TermInfo>,
    now: Cycle,
    req_buf: Vec<MissRequest>,
    /// Reusable staging buffer for messages injected during `tick` (hoisted
    /// out of the per-cycle hot path so steady state allocates nothing).
    inject_buf: Vec<(TerminalId, TerminalId, Msg)>,
    /// LLC tiles with queued inputs or undelivered outputs.
    active_llcs: ActiveSet,
    /// Memory channels with queued requests or outstanding completions.
    active_mems: ActiveSet,
    /// Reusable scratch for memory-channel completions.
    mem_done_buf: Vec<u64>,
    /// End-to-end L1 miss-to-fill latency: core request entering the chip
    /// model to its data packet dispatching back into the core.
    fill_hist: LatencyHist,
    /// Whether the chip-level fill histogram records (propagated to cores
    /// and LLC tiles by [`ScaleOutChip::set_tail_recording`]).
    record_tails: bool,
    /// Whether the workload is open-loop (gates the per-cycle arrival
    /// advance so closed-loop runs pay nothing in the core loop).
    open_loop: bool,
}

/// Builds the organization's fabric: the network plus the terminal ids
/// for cores, LLC tiles and memory channels, and the preferred
/// core-activation order.
fn build_fabric(cfg: &ChipConfig) -> BuiltFabric {
    match cfg.organization {
        Organization::Mesh => {
            let built = build_mesh(&cfg.mesh_spec());
            let order = center_first_order(built.cols, built.rows);
            (
                Box::new(built.network),
                built.tile_terminals.clone(),
                built.tile_terminals,
                built.mc_terminals,
                order,
            )
        }
        Organization::FlattenedButterfly => {
            let built = build_fbfly(&cfg.fbfly_spec());
            let order = center_first_order(built.cols, built.rows);
            (
                Box::new(built.network),
                built.tile_terminals.clone(),
                built.tile_terminals,
                built.mc_terminals,
                order,
            )
        }
        Organization::NocOut => {
            let built = build_nocout(&cfg.nocout_spec());
            // LLC-adjacent cores first (§5.3: 16-core workloads run on
            // the core tiles adjacent to the LLC).
            let mut order: Vec<usize> = (0..built.core_terminals.len()).collect();
            order.sort_by_key(|&c| (built.core_depth(c), c));
            (
                Box::new(built.network),
                built.core_terminals,
                built.llc_terminals,
                built.mc_terminals,
                order,
            )
        }
        Organization::IdealWire | Organization::ZeroLoadMesh => {
            let kind = if cfg.organization == Organization::IdealWire {
                AnalyticKind::IdealWire
            } else {
                AnalyticKind::ZeroLoadMesh
            };
            let mut spec = AnalyticSpec::for_tiles(cfg.cores, kind);
            spec.link_width_bits = cfg.link_width_bits;
            spec.num_memory_channels = cfg.mem_channels;
            let fab: LatencyFabric = build_analytic(&spec);
            let tiles: Vec<TerminalId> =
                (0..cfg.cores as u16).map(TerminalId).collect();
            let mcs: Vec<TerminalId> = (0..cfg.mem_channels as u16)
                .map(|k| TerminalId(cfg.cores as u16 + k))
                .collect();
            let order = center_first_order(spec.cols, spec.rows);
            (Box::new(fab), tiles.clone(), tiles, mcs, order)
        }
    }
}

impl std::fmt::Debug for ScaleOutChip {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScaleOutChip")
            .field("organization", &self.cfg.organization)
            .field("cores", &self.cores.len())
            .field("active", &self.active.len())
            .field("llc_tiles", &self.llcs.len())
            .field("now", &self.now)
            .finish()
    }
}

impl ScaleOutChip {
    /// Builds a chip running `workload` — a synthetic [`Workload`] or any
    /// other [`WorkloadClass`] such as a captured trace — with the given
    /// seed (trace replay ignores the seed: the streams are literal).
    ///
    /// # Panics
    ///
    /// Panics on inconsistent configurations (e.g. a core count the
    /// organization cannot lay out) and on a trace whose streams cannot
    /// be opened.
    pub fn new(cfg: ChipConfig, workload: impl Into<WorkloadClass>, seed: u64) -> Self {
        let class = workload.into();
        let (fabric, core_term, llc_term, mc_term, active_order): BuiltFabric =
            build_fabric(&cfg);

        let llc_tiles = llc_term.len();
        let banks = if cfg.organization == Organization::NocOut {
            cfg.banks_per_llc_tile
        } else {
            1
        };
        let map = AddressMap::new(llc_tiles, banks, cfg.mem_channels);
        let slice_bytes = cfg.llc_total_bytes / llc_tiles as u64;
        let llc_cfg = LlcConfig {
            slice_bytes,
            banks,
            ..if cfg.organization == Organization::NocOut {
                LlcConfig::nocout_tile()
            } else {
                LlcConfig::tiled_slice()
            }
        };
        let llcs: Vec<LlcTile> = (0..llc_tiles)
            .map(|i| LlcTile::new(llc_cfg.at_position(i, llc_tiles)))
            .collect();
        let channels: Vec<MemoryChannel> = (0..cfg.mem_channels)
            .map(|_| MemoryChannel::new(MemChannelConfig::default()))
            .collect();
        let cores: Vec<Core> = (0..cfg.cores).map(|_| Core::new(CoreConfig::a15())).collect();

        // Reverse terminal map.
        let max_term = core_term
            .iter()
            .chain(llc_term.iter())
            .chain(mc_term.iter())
            .map(|t| t.index())
            .max()
            .expect("at least one terminal")
            + 1;
        let mut term_info = vec![TermInfo::default(); max_term];
        for (i, t) in core_term.iter().enumerate() {
            term_info[t.index()].core = Some(i);
        }
        for (i, t) in llc_term.iter().enumerate() {
            term_info[t.index()].llc = Some(i);
        }
        for (i, t) in mc_term.iter().enumerate() {
            term_info[t.index()].mem = Some(i);
        }

        // Activate the first `n` cores in the organization's preferred
        // placement order. Synthetic classes scale with the profile; a
        // trace activates one core per captured stream.
        let wanted = match &class {
            WorkloadClass::Synthetic(w) => w.profile().active_cores(cfg.cores),
            WorkloadClass::Trace(t) => t.streams(),
            WorkloadClass::OpenLoop(s) => s.workload.profile().active_cores(cfg.cores),
        };
        let mut n_active = cfg
            .active_core_override
            .unwrap_or(wanted)
            .min(cfg.cores);
        if let WorkloadClass::Trace(t) = &class {
            // Silently dropping captured streams would simulate a
            // different workload than the trace records; subsetting must
            // be an explicit request (`active_core_override`), not a
            // side effect of a smaller chip.
            assert!(
                t.streams() <= cfg.cores || cfg.active_core_override.is_some(),
                "trace has {} streams but the chip has only {} cores; \
                 set active_core_override to replay a subset deliberately",
                t.streams(),
                cfg.cores
            );
            // A trace can drive at most one core per captured stream.
            n_active = n_active.min(t.streams());
        }
        let active = active_order[..n_active]
            .iter()
            .enumerate()
            .map(|(slot, &c)| {
                let source = match &class {
                    WorkloadClass::Synthetic(w) => {
                        CoreSource::Synthetic(WorkloadGen::new(w.profile(), c as u16, seed))
                    }
                    WorkloadClass::Trace(t) => CoreSource::Trace(
                        t.open_stream(slot).unwrap_or_else(|e| {
                            panic!("cannot open trace stream {slot}: {e}")
                        }),
                    ),
                    WorkloadClass::OpenLoop(s) => {
                        CoreSource::OpenLoop(OpenLoopSource::new(*s, c as u16, seed))
                    }
                };
                (c, source)
            })
            .collect();

        let num_llcs = llcs.len();
        let num_mems = channels.len();
        let mut chip = ScaleOutChip {
            cfg,
            fabric,
            cores,
            active,
            llcs,
            channels,
            msgs: MsgSlab::new(),
            txns: TxnTable::new(),
            map,
            core_term,
            llc_term,
            mc_term,
            term_info,
            now: Cycle::ZERO,
            req_buf: Vec::new(),
            inject_buf: Vec::new(),
            active_llcs: ActiveSet::with_len(num_llcs),
            active_mems: ActiveSet::with_len(num_mems),
            mem_done_buf: Vec::new(),
            fill_hist: LatencyHist::new(),
            record_tails: true,
            open_loop: matches!(&class, WorkloadClass::OpenLoop(_)),
        };
        chip.warm_caches(&class);
        chip
    }

    /// Checkpoint-style cache warming (§5.4: the paper launches from
    /// checkpoints with warmed caches): the shared instruction footprint,
    /// the LLC-resident data region and the shared read-write region are
    /// installed in the LLC; each active core's hot instruction set and
    /// local data set are installed in its L1s. Trace replay reproduces
    /// the same warm state from the region sizes recorded in the stream
    /// headers (local-data lines are derived from the *captured* core id,
    /// whose private address space the stream's accesses live in).
    fn warm_caches(&mut self, class: &WorkloadClass) {
        use nocout_mem::addr::LINE_BYTES;
        use nocout_workloads::gen::{INSTR_BASE, LLC_DATA_BASE, PRIVATE_BASE, SHARED_RW_BASE};
        if self.active.is_empty() {
            return;
        }
        let (footprint, llc_resident, shared_rw) = match class {
            WorkloadClass::Synthetic(w) => {
                let p = w.profile();
                (
                    p.instr_footprint_lines as u64,
                    p.llc_resident_lines as u64,
                    p.shared_rw_lines as u64,
                )
            }
            WorkloadClass::Trace(t) => {
                let w = t.warm();
                (
                    w.instr_footprint_lines as u64,
                    w.llc_resident_lines as u64,
                    w.shared_rw_lines as u64,
                )
            }
            WorkloadClass::OpenLoop(s) => {
                let p = s.workload.profile();
                (
                    p.instr_footprint_lines as u64,
                    p.llc_resident_lines as u64,
                    p.shared_rw_lines as u64,
                )
            }
        };
        for i in 0..footprint {
            let addr = Addr(INSTR_BASE + i * LINE_BYTES);
            self.llcs[self.map.home_tile(addr)].warm(addr);
        }
        for i in 0..llc_resident {
            let addr = Addr(LLC_DATA_BASE + i * LINE_BYTES);
            self.llcs[self.map.home_tile(addr)].warm(addr);
        }
        for i in 0..shared_rw {
            let addr = Addr(SHARED_RW_BASE + i * LINE_BYTES);
            self.llcs[self.map.home_tile(addr)].warm(addr);
        }
        for slot in 0..self.active.len() {
            let c = self.active[slot].0;
            let (hot, local): (Vec<Addr>, Vec<Addr>) = match &self.active[slot].1 {
                CoreSource::Synthetic(g) => {
                    (g.hot_instr_lines().collect(), g.local_data_lines().collect())
                }
                CoreSource::OpenLoop(o) => {
                    let g = o.gen();
                    (g.hot_instr_lines().collect(), g.local_data_lines().collect())
                }
                CoreSource::Trace(t) => {
                    let h = t.header();
                    let base = PRIVATE_BASE + ((h.core as u64) << 40);
                    (
                        (0..h.instr_hot_lines as u64)
                            .map(|i| Addr(INSTR_BASE + i * LINE_BYTES))
                            .collect(),
                        (0..h.local_data_lines as u64)
                            .map(|i| Addr(base + i * LINE_BYTES))
                            .collect(),
                    )
                }
            };
            for addr in hot {
                self.cores[c].warm_l1i(addr);
            }
            for addr in local {
                self.cores[c].warm_l1d(addr);
            }
        }
    }

    /// The chip configuration.
    pub fn config(&self) -> ChipConfig {
        self.cfg
    }

    /// Current cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Number of cores running the workload.
    pub fn active_cores(&self) -> usize {
        self.active.len()
    }

    /// Physical core indices running the workload, in activation-slot
    /// order (the organization's preferred placement). Slot `i` of a
    /// trace replay drives the core this method lists at position `i`.
    pub fn active_core_ids(&self) -> Vec<usize> {
        self.active.iter().map(|(c, _)| *c).collect()
    }

    /// Protocol messages currently in flight (network + tables).
    pub fn inflight_messages(&self) -> usize {
        self.msgs.len()
    }

    /// Outstanding core transactions.
    pub fn inflight_transactions(&self) -> usize {
        self.txns.live()
    }

    fn inject(&mut self, src: TerminalId, dst: TerminalId, msg: Msg) {
        let class = msg.class();
        let payload = msg.payload_bytes();
        let token = self.msgs.insert(msg);
        self.fabric.inject(src, dst, class, payload, token);
    }

    /// Advances the chip by one cycle, visiting only components with work:
    /// LLC tiles and memory channels are scanned through active sets that
    /// a component enters when traffic arrives for it and leaves when it
    /// drains. Bit-identical to [`ScaleOutChip::tick_reference`] (a tick
    /// of an idle component is a no-op), which the differential tests
    /// enforce across every organization.
    pub fn tick(&mut self) {
        self.tick_impl(false);
    }

    /// The full-scan, per-instruction reference tick: semantically
    /// identical to [`ScaleOutChip::tick`] but visits every LLC tile and
    /// memory channel every cycle *and* pulls instructions across the
    /// source trait object one at a time (`Core::tick_reference`) instead
    /// of in blocks. Kept as the oracle for differential testing of both
    /// the active-set scheduler and the block-based delivery path (and as
    /// the honest baseline for their microbenchmarks). Both flavours run
    /// on the same ring-ROB/array-MSHR core structures; those are proved
    /// equivalent to their pre-refactor containers separately
    /// (`tests/chip_golden_metrics.rs`, `tests/proptest_core.rs`).
    pub fn tick_reference(&mut self) {
        self.tick_impl(true);
    }

    fn tick_impl(&mut self, full_scan: bool) {
        let now = self.now;

        // 1. Cores execute and emit miss requests.
        let mut injections = std::mem::take(&mut self.inject_buf);
        // Open-loop arrivals land on their schedule regardless of core
        // progress (a fast-forwarded gap is caught up in one call). The
        // pre-pass is gated so closed-loop runs keep the core loop as-is.
        if self.open_loop {
            for (_, source) in self.active.iter_mut() {
                if let CoreSource::OpenLoop(o) = source {
                    o.advance_to(now.raw());
                }
            }
        }
        for ai in 0..self.active.len() {
            let (c, source) = {
                let entry = &mut self.active[ai];
                (entry.0, &mut entry.1)
            };
            self.req_buf.clear();
            if full_scan {
                self.cores[c].tick_reference(now, source, &mut self.req_buf);
            } else {
                self.cores[c].tick(now, source, &mut self.req_buf);
            }
            for r in self.req_buf.drain(..) {
                let txn = self.txns.alloc(c as u16, r.line, r.kind, now);
                let home = self.map.home_tile(r.line);
                injections.push((
                    self.core_term[c],
                    self.llc_term[home],
                    Msg::CoreRequest {
                        txn,
                        core: CoreId(c as u16),
                        addr: r.line,
                        kind: r.kind.request(),
                    },
                ));
            }
        }
        for (src, dst, msg) in injections.drain(..) {
            self.inject(src, dst, msg);
        }

        // 2. Active LLC tiles process and emit protocol messages. The
        // bitmap is visited in index order, so the messages injected here
        // appear in exactly the order the full scan would produce.
        if full_scan || !self.active_llcs.is_empty() {
            for i in 0..self.llcs.len() {
                if !full_scan && !self.active_llcs.member[i] {
                    continue;
                }
                self.llcs[i].tick(now);
                while let Some(out) = self.llcs[i].pop_ready(now) {
                    let (src, dst, msg) = self.convert_llc_output(i, out);
                    injections.push((src, dst, msg));
                }
                self.active_llcs.set(i, self.llcs[i].has_pending_work());
            }
            for (src, dst, msg) in injections.drain(..) {
                self.inject(src, dst, msg);
            }
        }

        // 3. Active memory channels complete reads.
        if full_scan || !self.active_mems.is_empty() {
            let mut done = std::mem::take(&mut self.mem_done_buf);
            for k in 0..self.channels.len() {
                if !full_scan && !self.active_mems.member[k] {
                    continue;
                }
                done.clear();
                self.channels[k].tick(now, &mut done);
                for &token in &done {
                    let home = match self.msgs.get(token) {
                        Msg::MemData { home, .. } => *home as usize,
                        other => unreachable!("unexpected memory completion {other:?}"),
                    };
                    self.fabric.inject(
                        self.mc_term[k],
                        self.llc_term[home],
                        MessageClass::Response,
                        nocout_mem::LINE_BYTES as u32,
                        token,
                    );
                }
                self.active_mems.set(k, self.channels[k].has_pending_work());
            }
            self.mem_done_buf = done;
        }

        // 4. The interconnect moves flits.
        self.fabric.tick();

        // 5. Deliveries resume protocol FSMs. The fabric hands back only
        // terminals that actually received packets this cycle — on a
        // 64-core chip most terminals are idle most cycles, so scanning
        // all of them was the dominant cost of this step.
        while let Some(t) = self.fabric.take_ready_terminal() {
            while let Some(delivery) = self.fabric.poll(t) {
                self.dispatch(t.index(), delivery.packet.token, now);
            }
        }

        self.inject_buf = injections;
        self.now.0 += 1;
    }

    /// Runs `cycles` ticks, fast-forwarding through stretches where every
    /// component is provably idle: all active cores are fetch-stalled with
    /// nothing to retire, the LLC/memory active sets hold only timed
    /// wakeups, and the fabric's only pending work sits in its event
    /// wheels. The clock then jumps to the earliest wake cycle (stalled
    /// cores receive their per-cycle stall counters in bulk), so the
    /// result is bit-identical to calling [`ScaleOutChip::tick`] `cycles`
    /// times — the chip-level analogue of the network's
    /// `run_until_drained` fast-forward.
    pub fn run_for(&mut self, cycles: u64) {
        let mut remaining = cycles;
        while remaining > 0 {
            match self.skippable_cycles() {
                Some(skip) if skip > 0 => {
                    let skip = skip.min(remaining);
                    self.skip_idle(skip);
                    remaining -= skip;
                }
                _ => {
                    self.tick();
                    remaining -= 1;
                }
            }
        }
    }

    /// How many upcoming whole-chip ticks are provably no-ops (beyond
    /// counter bumps on stalled cores). `None` when some component needs
    /// per-cycle ticking right now.
    fn skippable_cycles(&self) -> Option<u64> {
        fn merge(wake: &mut Option<Cycle>, at: Cycle) {
            *wake = Some(wake.map_or(at, |w| w.min(at)));
        }
        let mut wake: Option<Cycle> = None;
        for (c, _) in &self.active {
            match self.cores[*c].idle_state() {
                CoreIdle::Busy => return None,
                CoreIdle::Stalled => {}
                CoreIdle::StalledUntil(at) => merge(&mut wake, at),
            }
        }
        if !self.active_llcs.is_empty() {
            for (i, tile) in self.llcs.iter().enumerate() {
                if !self.active_llcs.member[i] {
                    continue;
                }
                // Queued inputs arbitrate for banks (and count wait
                // cycles) every cycle; only output timers are skippable.
                if tile.has_queued_input() {
                    return None;
                }
                if let Some(at) = tile.next_output_at() {
                    merge(&mut wake, at);
                }
            }
        }
        if !self.active_mems.is_empty() {
            for (k, ch) in self.channels.iter().enumerate() {
                if !self.active_mems.member[k] {
                    continue;
                }
                if let Some(at) = ch.next_wake() {
                    merge(&mut wake, at);
                }
            }
        }
        match self.fabric.next_event() {
            NextEvent::EveryCycle => return None,
            NextEvent::Idle => {}
            NextEvent::At(at) => merge(&mut wake, at),
        }
        Some(match wake {
            Some(w) => w.raw().saturating_sub(self.now.raw()),
            // Fully quiescent: nothing but stall counters would ever move
            // again, so any number of cycles may be skipped.
            None => u64::MAX,
        })
    }

    /// Applies `delta` skipped cycles: stalled cores take their counter
    /// bumps in bulk, the fabric clock advances, and the chip clock jumps.
    fn skip_idle(&mut self, delta: u64) {
        for ai in 0..self.active.len() {
            let c = self.active[ai].0;
            self.cores[c].fast_forward_stalled(delta);
        }
        self.fabric.skip_idle(delta);
        self.now.0 += delta;
    }

    fn convert_llc_output(
        &mut self,
        tile: usize,
        out: LlcOutput,
    ) -> (TerminalId, TerminalId, Msg) {
        let src = self.llc_term[tile];
        match out {
            LlcOutput::Data { txn, to } => {
                (src, self.core_term[to.index()], Msg::Data { txn })
            }
            LlcOutput::FwdGetS {
                txn,
                owner,
                requester,
                addr,
            } => (
                src,
                self.core_term[owner.index()],
                Msg::FwdGetS {
                    txn,
                    requester,
                    addr,
                },
            ),
            LlcOutput::FwdGetX {
                txn,
                owner,
                requester,
                addr,
            } => (
                src,
                self.core_term[owner.index()],
                Msg::FwdGetX {
                    txn,
                    requester,
                    addr,
                },
            ),
            LlcOutput::Inv { mshr, sharer, addr } => (
                src,
                self.core_term[sharer.index()],
                Msg::Inv {
                    mshr,
                    home: tile as u16,
                    addr,
                },
            ),
            LlcOutput::MemRead { mshr, addr } => {
                let ch = self.map.memory_channel(addr);
                (
                    src,
                    self.mc_term[ch],
                    Msg::MemRead {
                        mshr,
                        home: tile as u16,
                        addr,
                    },
                )
            }
            LlcOutput::MemWrite { addr } => {
                let ch = self.map.memory_channel(addr);
                (src, self.mc_term[ch], Msg::MemWrite { addr })
            }
        }
    }

    fn dispatch(&mut self, terminal: usize, token: u64, now: Cycle) {
        let info = self.term_info[terminal];
        let msg = self.msgs.take(token);
        match msg {
            Msg::CoreRequest {
                txn,
                core,
                addr,
                kind,
            } => {
                let llc = info.llc.expect("CoreRequest must land on an LLC tile");
                self.active_llcs.insert(llc);
                self.llcs[llc].submit(LlcInput::Core {
                    txn,
                    core,
                    addr,
                    kind,
                });
            }
            Msg::WriteBack { core, addr } => {
                let llc = info.llc.expect("WriteBack must land on an LLC tile");
                self.active_llcs.insert(llc);
                self.llcs[llc].submit(LlcInput::WriteBack { core, addr });
            }
            Msg::InvAck { mshr } => {
                let llc = info.llc.expect("InvAck must land on an LLC tile");
                self.active_llcs.insert(llc);
                self.llcs[llc].submit(LlcInput::InvAck { mshr });
            }
            Msg::MemData { mshr, .. } => {
                let llc = info.llc.expect("MemData must land on an LLC tile");
                self.active_llcs.insert(llc);
                self.llcs[llc].submit(LlcInput::MemData { mshr });
            }
            Msg::Data { txn } => {
                let (core, line, kind, born) = self.txns.release(txn);
                if self.record_tails {
                    self.fill_hist.record(now.raw() - born.raw());
                }
                let c = core as usize;
                debug_assert_eq!(info.core, Some(c));
                if kind.is_ifetch() {
                    self.cores[c].fill_ifetch(line, now);
                } else if let Some(victim) = self.cores[c].fill_data(line, now) {
                    if victim.dirty {
                        let home = self.map.home_tile(victim.addr);
                        self.inject(
                            self.core_term[c],
                            self.llc_term[home],
                            Msg::WriteBack {
                                core: CoreId(core),
                                addr: victim.addr,
                            },
                        );
                    }
                }
            }
            Msg::FwdGetS {
                txn,
                requester,
                addr,
            } => {
                let c = info.core.expect("snoop must land on a core");
                self.cores[c].snoop_downgrade(addr);
                // The owner supplies the line straight to the requester
                // (an L1-to-L1 forward; in NOC-Out it physically transits
                // the LLC region).
                self.inject(
                    self.core_term[c],
                    self.core_term[requester.index()],
                    Msg::Data { txn },
                );
            }
            Msg::FwdGetX {
                txn,
                requester,
                addr,
            } => {
                let c = info.core.expect("snoop must land on a core");
                self.cores[c].snoop_invalidate(addr);
                self.inject(
                    self.core_term[c],
                    self.core_term[requester.index()],
                    Msg::Data { txn },
                );
            }
            Msg::Inv { mshr, home, addr } => {
                let c = info.core.expect("invalidation must land on a core");
                self.cores[c].snoop_invalidate(addr);
                self.inject(
                    self.core_term[c],
                    self.llc_term[home as usize],
                    Msg::InvAck { mshr },
                );
            }
            Msg::MemRead { mshr, home, addr } => {
                let ch = info.mem.expect("MemRead must land on a memory channel");
                let token = self.msgs.insert(Msg::MemData { mshr, home });
                self.active_mems.insert(ch);
                self.channels[ch].push(MemRequest::Read { token, addr }, now);
            }
            Msg::MemWrite { addr } => {
                let ch = info.mem.expect("MemWrite must land on a memory channel");
                self.active_mems.insert(ch);
                self.channels[ch].push(MemRequest::Write { addr }, now);
            }
        }
    }

    /// Resets all statistics at the warmup/measurement boundary.
    pub fn reset_stats(&mut self) {
        for (c, _) in &self.active {
            self.cores[*c].reset_stats(self.now);
        }
        for (_, src) in &mut self.active {
            if let CoreSource::OpenLoop(o) = src {
                o.reset_stats();
            }
        }
        for llc in &mut self.llcs {
            llc.stats.reset();
        }
        for ch in &mut self.channels {
            ch.reads.reset();
            ch.writes.reset();
            ch.queue_cycles.reset();
        }
        self.fill_hist.reset();
        self.fabric.reset_stats();
    }

    /// Enables or disables every service-level latency recorder in one
    /// call (default on): block fetch-to-retire per core, LLC miss-to-fill
    /// per tile, and the chip-level end-to-end fill histogram. Recording
    /// is strictly observational — the lockstep test in
    /// `tests/chip_event_determinism.rs` proves a recording run and a
    /// non-recording run produce bit-identical legacy metrics. The NoC's
    /// per-class packet histograms record unconditionally (they share the
    /// delivery bookkeeping that always runs); open-loop request latency
    /// is workload semantics, not observation, so it is not gated either.
    pub fn set_tail_recording(&mut self, on: bool) {
        self.record_tails = on;
        for core in &mut self.cores {
            core.set_tail_recording(on);
        }
        for llc in &mut self.llcs {
            llc.set_tail_recording(on);
        }
    }

    /// Collects the metrics accumulated since the last reset.
    pub fn metrics(&self) -> SystemMetrics {
        let mut per_core_ipc = vec![0.0; self.cores.len()];
        let mut instructions = 0u64;
        let mut cycles = 0u64;
        let mut fetch_stall = 0u64;
        let mut core_cycles = 0u64;
        let mut ifetch_fill_wait_cycles = 0u64;
        let mut block_hist = LatencyHist::new();
        let mut request_hist = LatencyHist::new();
        for (c, src) in &self.active {
            let s = &self.cores[*c].stats;
            per_core_ipc[*c] = s.ipc();
            instructions += s.retired.value();
            cycles = cycles.max(s.cycles.value());
            fetch_stall += s.fetch_stall_cycles.value();
            core_cycles += s.cycles.value();
            ifetch_fill_wait_cycles += s.ifetch_fill_wait_cycles.value();
            block_hist.merge(&s.block_latency);
            if let CoreSource::OpenLoop(o) = src {
                request_hist.merge(o.hist());
            }
        }
        let mut llc = LlcSummary::default();
        let mut llc_miss_hist = LatencyHist::new();
        for tile in &self.llcs {
            llc.accesses += tile.stats.accesses.value();
            llc.hits += tile.stats.hits.value();
            llc.misses += tile.stats.misses.value();
            llc.snoops_sent += tile.stats.snoops_sent.value();
            llc.snooping_accesses += tile.stats.snooping_accesses.value();
            llc.writebacks += tile.stats.writebacks.value();
            llc_miss_hist.merge(&tile.stats.miss_latency);
        }
        let ns = self.fabric.stats();
        let network = NetSummary {
            packets: ns.packets_delivered.value(),
            mean_latency: ns.mean_latency(),
            mean_request_latency: ns.mean_class_latency(MessageClass::Request),
            mean_response_latency: ns.mean_class_latency(MessageClass::Response),
            p50_latency: ns.latency_hist.percentile(0.5),
            p99_latency: ns.latency_hist.percentile(0.99),
            flit_mm: ns.flit_mm,
            buffer_writes: ns.buffer_writes.value(),
            buffer_reads: ns.buffer_reads.value(),
            xbar_traversals: ns.xbar_traversals.value(),
            request_tail: TailSummary::of(ns.class_tail(MessageClass::Request)),
            snoop_tail: TailSummary::of(ns.class_tail(MessageClass::Snoop)),
            response_tail: TailSummary::of(ns.class_tail(MessageClass::Response)),
        };
        let mut memory = MemSummary::default();
        for ch in &self.channels {
            memory.reads += ch.reads.value();
            memory.writes += ch.writes.value();
        }
        SystemMetrics {
            per_core_ipc,
            active_cores: self.active.len(),
            cycles,
            instructions,
            fetch_stall_fraction: if core_cycles == 0 {
                0.0
            } else {
                fetch_stall as f64 / core_cycles as f64
            },
            llc,
            network,
            memory,
            ifetch_fill_wait_cycles,
            block_latency: TailSummary::of(&block_hist),
            fill_latency: TailSummary::of(&self.fill_hist),
            llc_miss_latency: TailSummary::of(&llc_miss_hist),
            request_latency: TailSummary::of(&request_hist),
        }
    }
}

/// Captures `workload`'s synthetic streams for the cores `cfg` would
/// activate into a trace directory: one `core-NNN.nctrace` stream per
/// activation slot, each `instrs_per_core` instructions long, recorded
/// from a fresh [`WorkloadGen`] for the slot's physical core. Replaying
/// the returned [`TraceSet`] on the same `cfg` therefore drives the
/// identical cores with the identical streams — bit-identical chip
/// metrics, as long as the capture covers every instruction the run
/// consumes (see [`trace_capture_len`]).
///
/// Pre-existing stream files in `dir` are removed first, so a shorter
/// re-capture cannot leave stale extra streams behind.
pub fn capture_synthetic_trace(
    cfg: ChipConfig,
    workload: Workload,
    seed: u64,
    dir: &std::path::Path,
    instrs_per_core: u64,
) -> std::io::Result<Arc<TraceSet>> {
    let profile = workload.profile();
    // The same activation order and count `ScaleOutChip::new` would use
    // for this synthetic class — computed from the fabric build alone,
    // without constructing (and cache-warming) a throwaway chip.
    let (_, _, _, _, active_order) = build_fabric(&cfg);
    let n_active = cfg
        .active_core_override
        .unwrap_or_else(|| profile.active_cores(cfg.cores))
        .min(cfg.cores);
    std::fs::create_dir_all(dir)?;
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path
            .file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| n.ends_with(TRACE_SUFFIX))
        {
            std::fs::remove_file(path)?;
        }
    }
    for (slot, c) in active_order[..n_active].iter().copied().enumerate() {
        let mut gen = WorkloadGen::new(profile, c as u16, seed);
        let path = dir.join(format!("core-{slot:03}{TRACE_SUFFIX}"));
        let mut w = TraceWriter::create(path, TraceHeader::for_profile(&profile, c as u32, seed))?;
        w.capture(&mut gen, instrs_per_core)?;
        w.finish()?;
    }
    TraceSet::load(dir)
}

/// Instructions per core a capture must record so a run over `window`
/// cycles replays bit-identically: the dispatch width bounds per-cycle
/// consumption, and one block of prefetch headroom keeps the replay from
/// wrapping into the looped stream while the run is still consuming
/// fresh instructions.
pub fn trace_capture_len(window: &nocout_sim::config::MeasurementWindow) -> u64 {
    let width = CoreConfig::a15().width as u64;
    (window.total_cycles() + 2) * width + nocout_cpu::source::BLOCK_CAP as u64
}

/// Tile indices ordered centre-out: the paper runs 16-core workloads on
/// the 16 tiles in the centre of the tiled die (§5.3).
fn center_first_order(cols: usize, rows: usize) -> Vec<usize> {
    let cx = (cols as f64 - 1.0) / 2.0;
    let cy = (rows as f64 - 1.0) / 2.0;
    let mut order: Vec<usize> = (0..cols * rows).collect();
    order.sort_by(|&a, &b| {
        let da = ((a % cols) as f64 - cx).powi(2) + ((a / cols) as f64 - cy).powi(2);
        let db = ((b % cols) as f64 - cx).powi(2) + ((b / cols) as f64 - cy).powi(2);
        da.partial_cmp(&db).unwrap().then(a.cmp(&b))
    });
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_cycles(chip: &mut ScaleOutChip, n: u64) {
        for _ in 0..n {
            chip.tick();
        }
    }

    #[test]
    fn center_order_prefers_middle_tiles() {
        let order = center_first_order(8, 8);
        let center16: Vec<usize> = order[..16].to_vec();
        for &tile in &center16 {
            let (c, r) = (tile % 8, tile / 8);
            assert!((2..=5).contains(&c) && (2..=5).contains(&r), "tile {tile}");
        }
    }

    #[test]
    fn mesh_chip_makes_progress() {
        let mut chip = ScaleOutChip::new(
            ChipConfig::paper(Organization::Mesh),
            Workload::MapReduceC,
            1,
        );
        run_cycles(&mut chip, 3000);
        let m = chip.metrics();
        assert!(m.instructions > 1000, "retired {}", m.instructions);
        assert!(m.llc.accesses > 0);
        assert!(m.network.packets > 0);
    }

    #[test]
    fn nocout_chip_makes_progress() {
        let mut chip = ScaleOutChip::new(
            ChipConfig::paper(Organization::NocOut),
            Workload::MapReduceC,
            1,
        );
        run_cycles(&mut chip, 3000);
        assert!(chip.metrics().instructions > 1000);
    }

    #[test]
    fn analytic_fabrics_run() {
        for org in [Organization::IdealWire, Organization::ZeroLoadMesh] {
            let mut chip = ScaleOutChip::new(
                ChipConfig::with_cores(org, 4),
                Workload::DataServing,
                3,
            );
            run_cycles(&mut chip, 2000);
            assert!(chip.metrics().instructions > 100, "{org}");
        }
    }

    #[test]
    fn sixteen_core_workload_activates_sixteen() {
        let chip = ScaleOutChip::new(
            ChipConfig::paper(Organization::NocOut),
            Workload::WebSearch,
            1,
        );
        assert_eq!(chip.active_cores(), 16);
    }

    #[test]
    fn memory_traffic_flows() {
        let mut chip = ScaleOutChip::new(
            ChipConfig::paper(Organization::Mesh),
            Workload::DataServing,
            7,
        );
        run_cycles(&mut chip, 5000);
        let m = chip.metrics();
        assert!(m.memory.reads > 0, "vast dataset must reach memory");
        assert!(m.llc.misses > 0);
    }

    #[test]
    fn snoops_occur_but_rarely() {
        let mut chip = ScaleOutChip::new(
            ChipConfig::paper(Organization::Mesh),
            Workload::SatSolver,
            5,
        );
        run_cycles(&mut chip, 20_000);
        let m = chip.metrics();
        assert!(m.llc.snoops_sent > 0, "sharing must produce some snoops");
        assert!(
            m.llc.snoop_percent() < 10.0,
            "but rarely: {:.1}%",
            m.llc.snoop_percent()
        );
    }

    #[test]
    fn reset_clears_window() {
        let mut chip = ScaleOutChip::new(
            ChipConfig::paper(Organization::Mesh),
            Workload::MapReduceW,
            2,
        );
        run_cycles(&mut chip, 1000);
        chip.reset_stats();
        let m = chip.metrics();
        assert_eq!(m.instructions, 0);
        run_cycles(&mut chip, 1000);
        assert!(chip.metrics().instructions > 0);
    }

    #[test]
    fn no_transaction_leaks_over_long_run() {
        let mut chip = ScaleOutChip::new(
            ChipConfig::paper(Organization::NocOut),
            Workload::WebFrontend,
            9,
        );
        run_cycles(&mut chip, 10_000);
        // In-flight transactions stay bounded by cores × (MSHRs + fetch).
        assert!(
            chip.inflight_transactions() <= 16 * 10,
            "{} transactions leaked",
            chip.inflight_transactions()
        );
    }
}
