//! The Scale-Out Processor (SOP) configuration methodology (§2.2).
//!
//! The paper derives its 64-core / 8 MB configuration with the SOP
//! methodology [Lotfi-Kamran et al., ISCA 2012]: a cost-benefit framework
//! that maximizes *performance density* (throughput per unit die area)
//! over core count and LLC capacity. This module implements that
//! optimization with a first-order throughput model: per-core performance
//! rises with the fraction of the instruction footprint the LLC captures
//! and falls with the LLC access latency implied by die size.

use nocout_tech::ChipPowerModel;
use serde::{Deserialize, Serialize};

/// Inputs to the SOP optimization.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SopInputs {
    /// Die area budget for cores + LLC, mm².
    pub area_budget_mm2: f64,
    /// Instruction footprint the LLC should capture, MB.
    pub instr_footprint_mb: f64,
    /// Baseline per-core IPC when the footprint fully fits.
    pub base_core_ipc: f64,
    /// LLC accesses per kilo-instruction (drives latency sensitivity).
    pub llc_apki: f64,
    /// Additional stall cycles per LLC access per millimetre of average
    /// on-die distance.
    pub stall_per_access_mm: f64,
}

impl SopInputs {
    /// Inputs matching the paper's 32 nm setting: a ~210 mm² core+cache
    /// budget, multi-MB instruction footprints and latency-sensitive
    /// accesses.
    pub fn paper_32nm() -> Self {
        SopInputs {
            area_budget_mm2: 215.0,
            instr_footprint_mb: 6.0,
            base_core_ipc: 0.8,
            llc_apki: 40.0,
            stall_per_access_mm: 0.5,
        }
    }
}

/// One candidate configuration with its score.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SopPoint {
    /// Core count.
    pub cores: usize,
    /// LLC capacity in MB.
    pub llc_mb: f64,
    /// Estimated chip throughput (aggregate IPC).
    pub throughput: f64,
    /// Throughput per mm² — the SOP objective.
    pub performance_density: f64,
}

/// Evaluates one (cores, llc) candidate.
pub fn evaluate(inputs: &SopInputs, tech: &ChipPowerModel, cores: usize, llc_mb: f64) -> SopPoint {
    let area = tech.cores_area_mm2(cores) + tech.llc_area_mm2(llc_mb);
    // Fraction of the instruction working set the LLC captures: misses to
    // memory are an order of magnitude more costly than LLC hits.
    let capture = (llc_mb / inputs.instr_footprint_mb).min(1.0);
    // Average on-die distance grows with the square root of die area.
    let avg_distance_mm = area.sqrt() / 2.0;
    // Accesses the LLC fails to capture pay a memory-like penalty, modelled
    // as a 4× multiplier on the interconnect stall — this is what makes
    // LLCs below the instruction footprint a bad trade.
    let miss_penalty = 1.0 + 4.0 * (1.0 - capture);
    let stall_per_kinstr =
        inputs.llc_apki * inputs.stall_per_access_mm * avg_distance_mm * miss_penalty;
    let cycles_per_kinstr = 1000.0 / inputs.base_core_ipc + stall_per_kinstr;
    let core_ipc = 1000.0 / cycles_per_kinstr;
    let throughput = core_ipc * cores as f64;
    SopPoint {
        cores,
        llc_mb,
        throughput,
        performance_density: throughput / area,
    }
}

/// Sweeps core counts and LLC capacities under the area budget and returns
/// all feasible points, best (highest performance density) first.
pub fn optimize(inputs: &SopInputs, tech: &ChipPowerModel) -> Vec<SopPoint> {
    let mut points = Vec::new();
    for cores in (8..=128).step_by(8) {
        for llc_mb in [2.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0, 32.0] {
            let area = tech.cores_area_mm2(cores) + tech.llc_area_mm2(llc_mb);
            if area > inputs.area_budget_mm2 {
                continue;
            }
            points.push(evaluate(inputs, tech, cores, llc_mb));
        }
    }
    points.sort_by(|a, b| {
        b.performance_density
            .partial_cmp(&a.performance_density)
            .expect("finite scores")
    });
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimum_is_many_cores_modest_llc() {
        let best = optimize(&SopInputs::paper_32nm(), &ChipPowerModel::paper_32nm());
        let top = best.first().expect("some feasible point");
        // The SOP conclusion: many cores, modestly-sized LLC.
        assert!(top.cores >= 48, "expected many cores, got {}", top.cores);
        assert!(
            top.llc_mb <= 12.0,
            "expected a modest LLC, got {} MB",
            top.llc_mb
        );
    }

    #[test]
    fn paper_configuration_is_near_optimal() {
        let inputs = SopInputs::paper_32nm();
        let tech = ChipPowerModel::paper_32nm();
        let points = optimize(&inputs, &tech);
        let best = points[0].performance_density;
        let paper = evaluate(&inputs, &tech, 64, 8.0);
        assert!(
            paper.performance_density > 0.85 * best,
            "64 cores / 8 MB should be within 15% of the sweep optimum"
        );
    }

    #[test]
    fn more_cache_beyond_footprint_wastes_area() {
        let inputs = SopInputs::paper_32nm();
        let tech = ChipPowerModel::paper_32nm();
        let modest = evaluate(&inputs, &tech, 64, 8.0);
        let oversized = evaluate(&inputs, &tech, 64, 32.0);
        assert!(modest.performance_density > oversized.performance_density);
    }

    #[test]
    fn budget_is_respected() {
        let inputs = SopInputs::paper_32nm();
        let tech = ChipPowerModel::paper_32nm();
        for p in optimize(&inputs, &tech) {
            assert!(
                tech.cores_area_mm2(p.cores) + tech.llc_area_mm2(p.llc_mb)
                    <= inputs.area_budget_mm2
            );
        }
    }
}
