//! Umbrella crate for the NOC-Out reproduction.
//!
//! This root package ties the workspace together: it re-exports the main
//! public API (`nocout`) and hosts the cross-crate integration tests in
//! `tests/` and the runnable examples in `examples/`.
//!
//! See `README.md` for a tour, `docs/campaign-api.md` for the campaign
//! layer every experiment binary is built on, and
//! `docs/trace-format.md` for the trace workload format.

pub use nocout::*;

/// The individual substrate crates, re-exported for examples and tests that
/// want to reach below the top-level API.
pub mod substrates {
    pub use nocout_cpu as cpu;
    pub use nocout_mem as mem;
    pub use nocout_noc as noc;
    pub use nocout_sim as sim;
    pub use nocout_tech as tech;
    pub use nocout_workloads as workloads;
}
