//! Umbrella crate for the NOC-Out reproduction.
//!
//! This root package ties the workspace together: it re-exports the main
//! public API (`nocout`) and hosts the cross-crate integration tests in
//! `tests/` and the runnable examples in `examples/`.
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory, and
//! `EXPERIMENTS.md` for the paper-vs-measured record.

pub use nocout::*;

/// The individual substrate crates, re-exported for examples and tests that
/// want to reach below the top-level API.
pub mod substrates {
    pub use nocout_cpu as cpu;
    pub use nocout_mem as mem;
    pub use nocout_noc as noc;
    pub use nocout_sim as sim;
    pub use nocout_tech as tech;
    pub use nocout_workloads as workloads;
}
